//! End-to-end trace-driven workload runner and the machine-readable
//! `BENCH_workloads.json` artefact tracked across PRs.
//!
//! Each canonical scenario generates a seeded million-op trace
//! (`dsp-cam-workload`) and replays it through *both* arms — the
//! cycle-accurate `StreamingCam` pipeline and the transaction-level
//! `CamUnit` path that `CamRuntime` pool dispatch rides on — measuring
//! wall-clock op throughput per arm and p50/p99 end-to-end retire
//! latency in cycles from the streaming arm's retire log. Cross-arm
//! agreement (per-pipe completions and the quiescent snapshot) is
//! asserted on every run, so the perf numbers can never drift away
//! from a correct replay.
//!
//! Cycle-latency percentiles and trace digests are deterministic (same
//! seed + config on any machine, any feature set); only the ops/sec
//! fields are wall-clock noisy. `scripts/ci.sh` enforces the floors in
//! release mode via [`workload_smoke`](self#release-floors).

use std::io;
use std::path::PathBuf;
use std::time::Instant;

use dsp_cam_core::prelude::*;
use dsp_cam_workload::{
    direct_unit, generate, percentile, replay_direct, replay_streaming, split_by_pipe,
    streaming_cam, Arrival, OpMix, TraceCounts, WorkloadConfig,
};

use crate::failover::{
    measure_degraded_mode, DegradedModeRow, DEGRADED_AVAILABILITY_FLOOR,
    DEGRADED_RECOVERY_TICKS_CEILING,
};

/// Ops in the `degraded_mode` scenario. The cycle-accurate cluster
/// ingest loop is ~50× slower per op than the replay arms, so the
/// scenario runs at drill scale, not [`SCENARIO_OPS`] — every recorded
/// number is deterministic regardless.
pub const DEGRADED_MODE_OPS: u64 = 15_000;

/// Entries across the scenario unit's four replicated groups.
pub const SCENARIO_ENTRIES: usize = 8192;

/// Ops per canonical scenario recorded in `BENCH_workloads.json`.
pub const SCENARIO_OPS: u64 = 1_000_000;

/// Regression floors and ceilings for one scenario. Throughput floors
/// are wall-clock (release-mode only, sized ~3× under the reference
/// machine); latency ceilings are in cycles and *deterministic* — a
/// violated ceiling means the replay schedule itself changed, not that
/// the machine was slow.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadFloors {
    /// Minimum streaming-arm application ops/sec (wall clock, release).
    pub streaming_min_ops_per_sec: f64,
    /// Minimum direct-arm application ops/sec (wall clock, release).
    pub direct_min_ops_per_sec: f64,
    /// Ceiling on the p50 end-to-end retire latency in cycles.
    pub p50_retire_cycles_ceiling: u64,
    /// Ceiling on the p99 end-to-end retire latency in cycles.
    pub p99_retire_cycles_ceiling: u64,
}

/// One canonical workload scenario: a name, the generator config, and
/// whether the scenario unit runs its write buffer.
#[derive(Debug, Clone)]
pub struct WorkloadScenario {
    /// Stable scenario name (JSON key, CI log label).
    pub name: &'static str,
    /// Generator configuration (seed included).
    pub workload: WorkloadConfig,
    /// Whether the unit runs the CAM-fronted write buffer.
    pub write_buffer: bool,
    /// Release-mode regression floors.
    pub floors: WorkloadFloors,
}

/// The three canonical scenarios behind `BENCH_workloads.json`:
///
/// * `read_heavy` — 90:9:1 at Zipf 0.8, back-to-back arrival, 16-key
///   stream coalescing, write buffer off: the saturated lookup plane.
/// * `write_heavy` — 50:45:5 at Zipf 0.8, back-to-back arrival, 8-key
///   coalescing, write buffer on: update interference under load.
/// * `bursty_zipfian` — 90:9:1 at Zipf 1.0, on/off arrival (mean burst
///   64 ops, mean idle 48 cycles), write buffer on: queueing latency
///   and idle-tick drain.
#[must_use]
pub fn canonical_scenarios() -> Vec<WorkloadScenario> {
    let base = WorkloadConfig {
        ops: SCENARIO_OPS,
        key_space: 4096,
        prefill: 1536,
        max_live: Some(1900),
        churn_per_mille: 20,
        ..WorkloadConfig::default()
    };
    vec![
        WorkloadScenario {
            name: "read_heavy",
            workload: WorkloadConfig {
                seed: 0xA11CE,
                zipf_s: 0.8,
                mix: OpMix::READ_HEAVY,
                stream_batch: 16,
                arrival: Arrival::BackToBack,
                ..base.clone()
            },
            write_buffer: false,
            // Reference machine: ~200k ops/s streaming, ~174k direct;
            // retire p50/p99/max 6/8/8 cycles at 1M ops.
            floors: WorkloadFloors {
                streaming_min_ops_per_sec: 60_000.0,
                direct_min_ops_per_sec: 55_000.0,
                p50_retire_cycles_ceiling: 12,
                p99_retire_cycles_ceiling: 16,
            },
        },
        WorkloadScenario {
            name: "write_heavy",
            workload: WorkloadConfig {
                seed: 0xB0B,
                zipf_s: 0.8,
                mix: OpMix::WRITE_HEAVY,
                stream_batch: 8,
                arrival: Arrival::BackToBack,
                ..base.clone()
            },
            write_buffer: true,
            // Reference machine: ~61k ops/s both arms (update-dominated,
            // every write replicated into 4 groups); retire p50/p99/max
            // 6/8/8 cycles at 1M ops.
            floors: WorkloadFloors {
                streaming_min_ops_per_sec: 20_000.0,
                direct_min_ops_per_sec: 20_000.0,
                p50_retire_cycles_ceiling: 12,
                p99_retire_cycles_ceiling: 16,
            },
        },
        WorkloadScenario {
            name: "bursty_zipfian",
            workload: WorkloadConfig {
                seed: 0xBEE5,
                zipf_s: 1.0,
                mix: OpMix::READ_HEAVY,
                stream_batch: 16,
                arrival: Arrival::Bursty {
                    mean_burst: 64,
                    idle_ticks: 48,
                },
                ..base
            },
            write_buffer: true,
            // Reference machine: ~188k ops/s streaming, ~217k direct;
            // retire p50/p99/max 19/61/133 cycles at 1M ops — bursts
            // queue behind the single issue slot, so the tail is real.
            floors: WorkloadFloors {
                streaming_min_ops_per_sec: 60_000.0,
                direct_min_ops_per_sec: 65_000.0,
                p50_retire_cycles_ceiling: 32,
                p99_retire_cycles_ceiling: 96,
            },
        },
    ]
}

/// The scenario unit: Turbo tier, four replicated groups on four
/// pooled workers, 32-key batch kernel, optionally write-buffered.
fn scenario_unit_config(entries: usize, write_buffer: bool) -> UnitConfig {
    let block_size = (entries / 4).min(256);
    let mut builder = UnitConfig::builder()
        .data_width(32)
        .block_size(block_size)
        .num_blocks(entries / block_size)
        .bus_width(512)
        .fidelity(FidelityMode::Turbo)
        .batch_width(32)
        .workers(4)
        .dispatch(DispatchMode::Pool);
    if write_buffer {
        builder = builder.write_buffer(WriteBufferConfig {
            capacity: 256,
            drain_per_tick: 4,
            bypass: false,
        });
    }
    builder.build().expect("scenario geometry is valid")
}

/// Everything one scenario run produced. `digest`, `counts`, `ticks`
/// and the cycle percentiles are deterministic; the two ops/sec fields
/// are wall clock.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: &'static str,
    /// Application ops actually replayed.
    pub counts: TraceCounts,
    /// Trace digest (pins the generated artefact).
    pub digest: u64,
    /// Streaming-arm cycles from first arrival to quiescence.
    pub ticks: u64,
    /// Streaming-arm application ops per wall-clock second.
    pub streaming_ops_per_sec: f64,
    /// Direct-arm application ops per wall-clock second.
    pub direct_ops_per_sec: f64,
    /// p50 end-to-end retire latency, cycles.
    pub p50_retire_cycles: u64,
    /// p99 end-to-end retire latency, cycles.
    pub p99_retire_cycles: u64,
    /// Worst-case end-to-end retire latency, cycles.
    pub max_retire_cycles: u64,
    /// Matching keys across both arms (equal by construction).
    pub search_hits: u64,
}

impl ScenarioResult {
    /// Streaming cycles per application op — the II = 1 sanity number.
    #[must_use]
    pub fn cycles_per_op(&self) -> f64 {
        self.ticks as f64 / self.counts.app_ops() as f64
    }
}

/// Generate the scenario's trace (at `ops` application ops) and replay
/// it through both arms, asserting cross-arm agreement before any
/// number is reported.
///
/// # Panics
///
/// Panics if the generator rejects the config or the two arms diverge
/// — a correctness failure that must never be recorded as a perf
/// number.
#[must_use]
pub fn run_scenario(scenario: &WorkloadScenario, ops: u64) -> ScenarioResult {
    let workload = WorkloadConfig {
        ops,
        ..scenario.workload.clone()
    };
    let trace = generate(&workload).expect("canonical scenarios are valid");
    let config = scenario_unit_config(SCENARIO_ENTRIES, scenario.write_buffer);

    let mut cam = streaming_cam(config, 4);
    let start = Instant::now();
    let streamed = replay_streaming(&trace, &mut cam);
    let streaming_secs = start.elapsed().as_secs_f64();

    let mut unit = direct_unit(config, 4);
    let start = Instant::now();
    let direct = replay_direct(&trace, &mut unit);
    let direct_secs = start.elapsed().as_secs_f64();

    // Correctness gate: the perf artefact only ever records runs whose
    // two arms were observationally identical at quiescence.
    assert_eq!(
        split_by_pipe(&streamed.completions),
        split_by_pipe(&direct.completions),
        "replay arms diverged per pipe in scenario {}",
        scenario.name
    );
    assert_eq!(
        cam.unit().snapshot(),
        unit.snapshot(),
        "replay arms diverged at quiescence in scenario {}",
        scenario.name
    );
    assert_eq!(cam.buffer_depth(), 0, "streaming arm left staged writes");

    let counts = trace.counts();
    ScenarioResult {
        name: scenario.name,
        counts,
        digest: trace.digest(),
        ticks: streamed.ticks,
        streaming_ops_per_sec: counts.app_ops() as f64 / streaming_secs,
        direct_ops_per_sec: counts.app_ops() as f64 / direct_secs,
        p50_retire_cycles: percentile(&streamed.latencies, 50.0),
        p99_retire_cycles: percentile(&streamed.latencies, 99.0),
        max_retire_cycles: streamed.latencies.iter().copied().max().unwrap_or(0),
        search_hits: streamed.search_hits,
    }
}

/// Serialise scenario results (and their floors) to
/// `BENCH_workloads.json` at the repository root. Returns the written
/// path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_workloads_json(
    source: &str,
    runs: &[(WorkloadScenario, ScenarioResult)],
    degraded: Option<&DegradedModeRow>,
) -> io::Result<PathBuf> {
    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_workloads.json"
    ));
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!("  \"source\": \"{source}\",\n"));
    body.push_str(
        "  \"metric\": \"trace-driven mixed-op workloads: wall-clock ops/sec per replay arm \
         (noisy) and end-to-end retire-latency percentiles in cycles (deterministic)\",\n",
    );
    body.push_str("  \"scenarios\": [\n");
    for (i, (scenario, result)) in runs.iter().enumerate() {
        let arrival = match scenario.workload.arrival {
            Arrival::BackToBack => "back_to_back".to_string(),
            Arrival::Uniform { gap } => format!("uniform_gap_{gap}"),
            Arrival::Bursty {
                mean_burst,
                idle_ticks,
            } => format!("bursty_{mean_burst}on_{idle_ticks}off"),
        };
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"mix\": \"{}\", \"zipf_s\": {:.2}, \
             \"arrival\": \"{}\", \"stream_batch\": {}, \"write_buffer\": {}, \
             \"app_ops\": {}, \"evictions\": {}, \"trace_digest\": {}, \
             \"streaming_ticks\": {}, \"cycles_per_op\": {:.3}, \
             \"streaming_ops_per_sec\": {:.1}, \"direct_ops_per_sec\": {:.1}, \
             \"retire_p50_cycles\": {}, \"retire_p99_cycles\": {}, \
             \"retire_max_cycles\": {}, \"search_hits\": {}, \
             \"floor_streaming_ops_per_sec\": {:.1}, \"floor_direct_ops_per_sec\": {:.1}, \
             \"ceiling_retire_p50_cycles\": {}, \"ceiling_retire_p99_cycles\": {}}}{}\n",
            result.name,
            scenario.workload.mix.label(),
            scenario.workload.zipf_s,
            arrival,
            scenario.workload.stream_batch,
            scenario.write_buffer,
            result.counts.app_ops(),
            result.counts.evictions,
            result.digest,
            result.ticks,
            result.cycles_per_op(),
            result.streaming_ops_per_sec,
            result.direct_ops_per_sec,
            result.p50_retire_cycles,
            result.p99_retire_cycles,
            result.max_retire_cycles,
            result.search_hits,
            scenario.floors.streaming_min_ops_per_sec,
            scenario.floors.direct_min_ops_per_sec,
            scenario.floors.p50_retire_cycles_ceiling,
            scenario.floors.p99_retire_cycles_ceiling,
            if i + 1 == runs.len() { "" } else { "," },
        ));
    }
    body.push_str("  ]");
    if let Some(d) = degraded {
        body.push_str(&format!(
            ",\n  \"degraded_mode\": {{\"mix\": \"50:45:5\", \"app_ops\": {}, \
             \"trace_digest\": {}, \"presented\": {}, \"availability\": {:.4}, \
             \"degraded_answers\": {}, \"shed_writes\": {}, \"recovery_ticks\": {}, \
             \"rebuilds_completed\": {}, \"ticks\": {}, \
             \"floor_availability\": {DEGRADED_AVAILABILITY_FLOOR}, \
             \"ceiling_recovery_ticks\": {DEGRADED_RECOVERY_TICKS_CEILING}}}",
            d.app_ops,
            d.trace_digest,
            d.presented,
            d.availability,
            d.degraded_answers,
            d.shed_writes,
            d.recovery_ticks,
            d.rebuilds_completed,
            d.ticks,
        ));
    }
    body.push_str("\n}\n");
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Enforce one scenario's floors against its result.
///
/// # Panics
///
/// Panics when a throughput floor or a latency ceiling is violated.
pub fn assert_scenario_floors(scenario: &WorkloadScenario, result: &ScenarioResult) {
    let floors = &scenario.floors;
    assert!(
        result.streaming_ops_per_sec >= floors.streaming_min_ops_per_sec,
        "{}: streaming replay must sustain >= {:.0} ops/s, got {:.0}",
        scenario.name,
        floors.streaming_min_ops_per_sec,
        result.streaming_ops_per_sec
    );
    assert!(
        result.direct_ops_per_sec >= floors.direct_min_ops_per_sec,
        "{}: direct replay must sustain >= {:.0} ops/s, got {:.0}",
        scenario.name,
        floors.direct_min_ops_per_sec,
        result.direct_ops_per_sec
    );
    assert!(
        result.p50_retire_cycles <= floors.p50_retire_cycles_ceiling,
        "{}: p50 retire latency must be <= {} cycles, got {} (deterministic: the replay \
         schedule changed)",
        scenario.name,
        floors.p50_retire_cycles_ceiling,
        result.p50_retire_cycles
    );
    assert!(
        result.p99_retire_cycles <= floors.p99_retire_cycles_ceiling,
        "{}: p99 retire latency must be <= {} cycles, got {} (deterministic: the replay \
         schedule changed)",
        scenario.name,
        floors.p99_retire_cycles_ceiling,
        result.p99_retire_cycles
    );
}

/// Run every canonical scenario at the full [`SCENARIO_OPS`] count plus
/// the `degraded_mode` cluster scenario at [`DEGRADED_MODE_OPS`], print
/// a summary, write `BENCH_workloads.json`, and enforce all floors —
/// the release-mode entry point behind the `workload_smoke` CI stage.
///
/// # Panics
///
/// Panics when any scenario's replay arms diverge, any floor regresses,
/// or the `degraded_mode` scenario breaks its availability floor or
/// recovery-tick ceiling.
pub fn emit_bench_workloads_json(source: &str) {
    let runs: Vec<(WorkloadScenario, ScenarioResult)> = canonical_scenarios()
        .into_iter()
        .map(|scenario| {
            let result = run_scenario(&scenario, SCENARIO_OPS);
            (scenario, result)
        })
        .collect();
    let degraded = measure_degraded_mode(DEGRADED_MODE_OPS);
    println!();
    println!("Trace-driven workloads ({SCENARIO_ENTRIES} entries, Turbo, 4 groups / 4 workers):");
    for (scenario, result) in &runs {
        println!(
            "  {:>14}: {:>9} app ops in {:>9} cycles ({:.3} cyc/op), \
             streaming {:>9.0} ops/s, direct {:>9.0} ops/s, \
             retire p50/p99/max {}/{}/{} cycles, {} hits",
            scenario.name,
            result.counts.app_ops(),
            result.ticks,
            result.cycles_per_op(),
            result.streaming_ops_per_sec,
            result.direct_ops_per_sec,
            result.p50_retire_cycles,
            result.p99_retire_cycles,
            result.max_retire_cycles,
            result.search_hits,
        );
    }
    println!(
        "  {:>14}: {:>9} app ops, availability {:.4}, {} degraded answers, \
         {} shed, recovery {} ticks, {} cycles (4-shard cluster, one crash)",
        "degraded_mode",
        degraded.app_ops,
        degraded.availability,
        degraded.degraded_answers,
        degraded.shed_writes,
        degraded.recovery_ticks,
        degraded.ticks,
    );
    match write_bench_workloads_json(source, &runs, Some(&degraded)) {
        Ok(path) => println!("(json: {})", path.display()),
        Err(err) => println!("(failed to write BENCH_workloads.json: {err})"),
    }
    for (scenario, result) in &runs {
        assert_scenario_floors(scenario, result);
    }
    assert!(
        degraded.availability >= DEGRADED_AVAILABILITY_FLOOR,
        "degraded_mode: availability must be >= {DEGRADED_AVAILABILITY_FLOOR} across the \
         shard crash + rebuild, got {:.4}",
        degraded.availability
    );
    assert!(
        degraded.recovery_ticks > 0 && degraded.recovery_ticks <= DEGRADED_RECOVERY_TICKS_CEILING,
        "degraded_mode: recovery must complete within {DEGRADED_RECOVERY_TICKS_CEILING} ticks \
         (deterministic: the restore model changed), got {}",
        degraded.recovery_ticks
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_scenarios_cover_the_required_shapes() {
        let scenarios = canonical_scenarios();
        assert_eq!(scenarios.len(), 3);
        let read_heavy = &scenarios[0];
        assert_eq!(read_heavy.workload.mix, OpMix::READ_HEAVY);
        assert!(!read_heavy.write_buffer);
        let write_heavy = &scenarios[1];
        assert_eq!(write_heavy.workload.mix, OpMix::WRITE_HEAVY);
        assert!(write_heavy.write_buffer);
        let bursty = &scenarios[2];
        assert!((bursty.workload.zipf_s - 1.0).abs() < 1e-9);
        assert!(matches!(bursty.workload.arrival, Arrival::Bursty { .. }));
        for scenario in &scenarios {
            assert_eq!(scenario.workload.ops, SCENARIO_OPS);
            assert!(scenario.floors.streaming_min_ops_per_sec > 0.0);
            assert!(scenario.floors.p99_retire_cycles_ceiling > 0);
        }
    }

    #[test]
    fn scenarios_replay_consistently_at_reduced_op_count() {
        // Debug-mode sanity: every canonical scenario passes its
        // cross-arm agreement gate (asserted inside run_scenario) on a
        // 15k-op prefix, with the deterministic latency ceilings
        // already holding (regeneration determinism is proptested in
        // dsp-cam-workload).
        for scenario in canonical_scenarios() {
            let a = run_scenario(&scenario, 15_000);
            assert_eq!(a.counts.app_ops(), 15_000);
            assert!(
                a.search_hits > 0,
                "{}: popular keys must hit",
                scenario.name
            );
            assert!(
                a.p99_retire_cycles <= scenario.floors.p99_retire_cycles_ceiling,
                "{}: p99 {} cycles over its {}-cycle ceiling (deterministic)",
                scenario.name,
                a.p99_retire_cycles,
                scenario.floors.p99_retire_cycles_ceiling
            );
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn obs_histogram_quantiles_bracket_the_retire_log_percentiles() {
        // The pipeline's obs histograms (log2 buckets) and the exact
        // retire-log percentiles must tell the same story: the bucket
        // upper-edge quantile is >= the exact percentile and within 2x.
        use std::sync::Arc;

        let scenario = canonical_scenarios().remove(2);
        let workload = WorkloadConfig {
            ops: 10_000,
            ..scenario.workload.clone()
        };
        let trace = dsp_cam_workload::generate(&workload).unwrap();
        let sink = Arc::new(dsp_cam_obs::ObsSink::new());
        let mut cam = streaming_cam(
            scenario_unit_config(SCENARIO_ENTRIES, scenario.write_buffer),
            4,
        );
        cam.attach_observer(&sink);
        let outcome = replay_streaming(&trace, &mut cam);
        let exact_p99 = percentile(&outcome.latencies, 99.0);

        let snap = sink.snapshot();
        let search = snap
            .registry
            .histogram("pipeline", "search_latency_cycles")
            .expect("search latencies observed");
        let update = snap
            .registry
            .histogram("pipeline", "update_latency_cycles")
            .expect("update latencies observed");
        assert_eq!(
            search.count() + update.count(),
            outcome.latencies.len() as u64,
            "histograms observed every retirement"
        );
        let hist_p99 = search.quantile(0.99).max(update.quantile(0.99));
        assert!(
            hist_p99 >= exact_p99 && hist_p99 <= exact_p99 * 2,
            "log2-bucket p99 {hist_p99} must bracket exact p99 {exact_p99} within 2x"
        );
    }

    /// Release-mode end-to-end workload floors on the three canonical
    /// million-op scenarios; writes `BENCH_workloads.json`. Run by
    /// `scripts/ci.sh` as
    /// `cargo test --release -p dsp-cam-bench -- --ignored workload_smoke`;
    /// far too slow for the default debug test pass, hence ignored.
    #[test]
    #[ignore = "release-mode workload smoke, run explicitly by scripts/ci.sh"]
    fn workload_smoke() {
        emit_bench_workloads_json("dsp-cam-bench::workloads::workload_smoke");
    }
}
