//! The cluster failover drills behind the `failover_rows` section of
//! `BENCH_search.json` and the `degraded_mode` scenario of
//! `BENCH_workloads.json`.
//!
//! Each drill replays a fixed-seed write-heavy trace through the
//! cycle-accurate cluster ingest loop while a [`ClusterFaultPlan`]
//! kills or stalls a shard mid-stream, and reports the failover
//! protocol's observables: availability (fraction of presented keys and
//! ops answered — degraded replica reads count, shed writes do not),
//! recovery ticks from detection to the shard serving again, degraded
//! answers, and the retry/shed tallies. Every number here is
//! **deterministic** — the ingest loop is lockstep, the trace and the
//! fault schedule are seeded, and no wall clock is involved — so a
//! violated floor means the failover protocol itself changed, not that
//! the machine was slow.

use dsp_cam_cluster::{
    replay_cluster, CamCluster, ClusterFaultPlan, IngestConfig, PlannedFault, ReplicationConfig,
    ShardFault, ShedPolicy,
};
use dsp_cam_core::prelude::*;
use dsp_cam_workload::{generate, Arrival, OpMix, Trace, WorkloadConfig};

/// Release-mode floor on [`FailoverRow::availability`] for every drill:
/// a single-shard failure plus its recovery must leave at least 99% of
/// presented keys/ops answered. Both canonical drills measure 1.0 —
/// the patient shed policy outwaits every outage — so the floor is the
/// ISSUE's contract, not a noise margin.
pub const FAILOVER_AVAILABILITY_FLOOR: f64 = 0.99;

/// Release-mode ceiling on the worst recovery-tick sample of any drill.
/// Recovery is bounded by the restore model (one word per tick of
/// epoch + journal replay, so ~shard-occupancy ticks for a crash) or by
/// the stall length; the ceiling proves a failed shard can never wedge
/// the cluster indefinitely. Both drills' samples are deterministic
/// (crash rebuild ~200 ticks at the drill's fill level, stall exactly
/// its 300-tick schedule), leaving wide headroom under the ceiling.
pub const FAILOVER_RECOVERY_TICKS_CEILING: u64 = 2_000;

/// Availability floor on the `degraded_mode` workload scenario — same
/// contract as [`FAILOVER_AVAILABILITY_FLOOR`], enforced through
/// `BENCH_workloads.json`.
pub const DEGRADED_AVAILABILITY_FLOOR: f64 = 0.99;

/// Recovery-tick ceiling on the `degraded_mode` workload scenario.
pub const DEGRADED_RECOVERY_TICKS_CEILING: u64 = 2_000;

/// What one failover drill observed.
#[derive(Debug, Clone)]
pub struct FailoverRow {
    /// Stable drill name (JSON key, CI log label).
    pub scenario: &'static str,
    /// Shards in the drill cluster.
    pub shards: usize,
    /// Application operations in the replayed trace.
    pub app_ops: u64,
    /// Keys/ops presented — the availability denominator.
    pub presented: u64,
    /// Fraction of presented keys/ops answered (degraded reads count).
    pub availability: f64,
    /// Search keys answered from a replica epoch while their home shard
    /// was down.
    pub degraded_answers: u64,
    /// Writes dropped by overload admission control.
    pub shed_writes: u64,
    /// Deferred-write retry attempts against still-failed shards.
    pub write_retries: u64,
    /// Writes re-issued once after an infrastructure failure.
    pub infra_retries: u64,
    /// Shard failures detected.
    pub failures_detected: u64,
    /// Rebuilds driven to completion (`epoch + journal` reinstalled).
    pub rebuilds_completed: u64,
    /// Worst ticks-to-serving-again sample across the replay's
    /// recoveries (0 when nothing failed).
    pub max_recovery_ticks: u64,
    /// Issued minus completed at quiescence — must be 0.
    pub dropped: u64,
    /// Total lockstep cycles of the replay.
    pub ticks: u64,
}

/// The `degraded_mode` workload scenario's observables for
/// `BENCH_workloads.json`: a write-heavy trace with one mid-replay
/// shard crash, recording the availability fraction and the recovery
/// ticks. All fields are deterministic.
#[derive(Debug, Clone, Copy)]
pub struct DegradedModeRow {
    /// Application operations replayed.
    pub app_ops: u64,
    /// Trace digest (pins the generated artefact).
    pub trace_digest: u64,
    /// Keys/ops presented — the availability denominator.
    pub presented: u64,
    /// Fraction of presented keys/ops answered.
    pub availability: f64,
    /// Search keys answered from a replica epoch during the outage.
    pub degraded_answers: u64,
    /// Writes dropped by overload admission control.
    pub shed_writes: u64,
    /// Ticks from crash detection to the rebuilt shard serving again.
    pub recovery_ticks: u64,
    /// Rebuilds driven to completion (the scenario schedules one crash).
    pub rebuilds_completed: u64,
    /// Total lockstep cycles of the replay.
    pub ticks: u64,
}

/// The canonical drill trace: write-heavy (50:45:5) Zipfian keys over
/// the 4-shard drill cluster's key space, back-to-back arrival so the
/// fault always lands mid-burst.
fn drill_trace(ops: u64, seed: u64) -> Trace {
    generate(&WorkloadConfig {
        seed,
        ops,
        key_space: 8192,
        zipf_s: 0.8,
        mix: OpMix::WRITE_HEAVY,
        stream_batch: 8,
        arrival: Arrival::BackToBack,
        churn_per_mille: 50,
        prefill: 256,
        max_live: Some(2500),
        eviction_min_gap: 1,
    })
    .expect("canonical failover workload config is valid")
}

/// The drill cluster: four 1024-entry Turbo shards behind a 16-slot
/// ring, failover enabled with the default replication cadence and a
/// patient shed policy — retries outwait both canonical outages, so any
/// shed write is a protocol regression, not a tuning artefact.
fn drill_cluster() -> CamCluster {
    let config = UnitConfig::builder()
        .data_width(32)
        .block_size(256)
        .num_blocks(4)
        .bus_width(512)
        .fidelity(FidelityMode::Turbo)
        .write_buffer(WriteBufferConfig {
            capacity: 4096,
            drain_per_tick: 1,
            bypass: false,
        })
        .build()
        .expect("bench geometry is valid");
    let mut cluster = CamCluster::new(config, 4, 16).expect("constructible");
    cluster.enable_failover(ReplicationConfig::default());
    cluster.set_shed_policy(ShedPolicy {
        base_backoff_ticks: 4,
        max_retries: 8,
        retry_budget: 1 << 32,
    });
    cluster
}

/// Run one drill: replay `ops` trace ops against a fresh drill cluster
/// under `faults`, and fold the outcome into a [`FailoverRow`].
fn run_drill(scenario: &'static str, ops: u64, faults: Vec<PlannedFault>) -> FailoverRow {
    let trace = drill_trace(ops, 0xFA11_0BE5);
    let mut cluster = drill_cluster();
    let outcome = replay_cluster(
        &trace,
        &mut cluster,
        &IngestConfig {
            queue_capacity: 64,
            migrate: None,
            faults: Some(ClusterFaultPlan::from_faults(faults)),
        },
    )
    .expect("drill replay admits the bounded live set");
    FailoverRow {
        scenario,
        shards: cluster.num_shards(),
        app_ops: trace.counts().app_ops(),
        presented: outcome.presented,
        availability: outcome.availability(),
        degraded_answers: outcome.degraded_answers,
        shed_writes: outcome.shed_writes,
        write_retries: outcome.write_retries,
        infra_retries: outcome.infra_retries,
        failures_detected: outcome.failures_detected,
        rebuilds_completed: outcome.rebuilds_completed,
        max_recovery_ticks: outcome.recovery_ticks.iter().copied().max().unwrap_or(0),
        dropped: outcome.dropped,
        ticks: outcome.ticks,
    }
}

/// The two canonical failover drills at `ops` trace ops each:
///
/// * `crash_rebuild` — shard 0 crashes 120 ticks in (contents and
///   in-flight ops lost); the cluster serves its slots from replica
///   epochs, rebuilds `epoch + journal` at one word per tick, and
///   reinstalls the shard.
/// * `stall_recovery` — shard 1's issue port closes for 300 ticks;
///   reads degrade to replicas, deferred writes back off and land when
///   the port reopens.
#[must_use]
pub fn measure_failover_rows(ops: u64) -> Vec<FailoverRow> {
    vec![
        run_drill(
            "crash_rebuild",
            ops,
            vec![PlannedFault {
                at_tick: 120,
                shard: 0,
                fault: ShardFault::Crash,
            }],
        ),
        run_drill(
            "stall_recovery",
            ops,
            vec![PlannedFault {
                at_tick: 120,
                shard: 1,
                fault: ShardFault::Stall { ticks: 300 },
            }],
        ),
    ]
}

/// The `degraded_mode` workload scenario: the canonical write-heavy
/// drill trace with one shard crash 120 ticks into the replay,
/// reported for `BENCH_workloads.json`.
#[must_use]
pub fn measure_degraded_mode(ops: u64) -> DegradedModeRow {
    let trace = drill_trace(ops, 0xFA11_0BE5);
    let mut cluster = drill_cluster();
    let outcome = replay_cluster(
        &trace,
        &mut cluster,
        &IngestConfig {
            queue_capacity: 64,
            migrate: None,
            faults: Some(ClusterFaultPlan::from_faults(vec![PlannedFault {
                at_tick: 120,
                shard: 0,
                fault: ShardFault::Crash,
            }])),
        },
    )
    .expect("degraded-mode replay admits the bounded live set");
    DegradedModeRow {
        app_ops: trace.counts().app_ops(),
        trace_digest: trace.digest(),
        presented: outcome.presented,
        availability: outcome.availability(),
        degraded_answers: outcome.degraded_answers,
        shed_writes: outcome.shed_writes,
        recovery_ticks: outcome.recovery_ticks.iter().copied().max().unwrap_or(0),
        rebuilds_completed: outcome.rebuilds_completed,
        ticks: outcome.ticks,
    }
}

/// Enforce the failover floors against one drill row.
///
/// # Panics
///
/// Panics when the availability floor, the recovery-tick ceiling, or a
/// structural invariant (zero dropped queries, zero shed writes under
/// the patient policy, the scheduled failure detected and recovered)
/// is violated.
pub fn assert_failover_floors(row: &FailoverRow) {
    assert_eq!(
        row.dropped, 0,
        "{}: a shard failure must not drop a query",
        row.scenario
    );
    assert!(
        row.availability >= FAILOVER_AVAILABILITY_FLOOR,
        "{}: availability must be >= {FAILOVER_AVAILABILITY_FLOOR} across a single-shard \
         failure + recovery, got {:.4}",
        row.scenario,
        row.availability
    );
    assert_eq!(
        row.shed_writes, 0,
        "{}: the patient shed policy must outwait the outage, shed {}",
        row.scenario, row.shed_writes
    );
    assert_eq!(
        row.failures_detected, 1,
        "{}: exactly the scheduled fault must be detected",
        row.scenario
    );
    assert!(
        row.max_recovery_ticks > 0 && row.max_recovery_ticks <= FAILOVER_RECOVERY_TICKS_CEILING,
        "{}: recovery must complete within {FAILOVER_RECOVERY_TICKS_CEILING} ticks \
         (deterministic: the restore model changed), got {}",
        row.scenario,
        row.max_recovery_ticks
    );
    assert!(
        row.degraded_answers > 0,
        "{}: the outage window must serve reads from replica epochs",
        row.scenario
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_drills_hold_their_floors_at_debug_size() {
        // The floors are deterministic (lockstep cycles, seeded trace
        // and schedule), so debug enforces the same contract the
        // release smoke does — just on a shorter trace.
        let rows = measure_failover_rows(2_000);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_failover_floors(row);
        }
        let crash = &rows[0];
        assert_eq!(crash.scenario, "crash_rebuild");
        assert_eq!(crash.rebuilds_completed, 1, "the crash must rebuild");
        let stall = &rows[1];
        assert_eq!(stall.scenario, "stall_recovery");
        assert_eq!(stall.rebuilds_completed, 0, "a stall keeps its contents");
        assert_eq!(
            stall.max_recovery_ticks, 300,
            "stall recovery is exactly the scheduled port closure"
        );
    }

    #[test]
    fn degraded_mode_scenario_is_deterministic_and_floored() {
        let a = measure_degraded_mode(2_000);
        let b = measure_degraded_mode(2_000);
        assert_eq!(a.trace_digest, b.trace_digest);
        assert_eq!(a.presented, b.presented);
        assert_eq!(a.degraded_answers, b.degraded_answers);
        assert_eq!(a.recovery_ticks, b.recovery_ticks);
        assert_eq!(a.ticks, b.ticks);
        assert!(a.availability >= DEGRADED_AVAILABILITY_FLOOR);
        assert!(a.recovery_ticks > 0 && a.recovery_ticks <= DEGRADED_RECOVERY_TICKS_CEILING);
        assert_eq!(a.rebuilds_completed, 1);
        assert!(a.degraded_answers > 0);
    }

    /// Release-mode failover floors at the canonical drill scale; the
    /// same rows are recorded in `BENCH_search.json` by
    /// `emit_bench_search_json`. Run by `scripts/ci.sh` as
    /// `cargo test --release -p dsp-cam-bench -- --ignored failover_smoke`
    /// under both feature sets; ignored in the default debug pass (the
    /// debug-size test above already enforces the deterministic
    /// contract).
    #[test]
    #[ignore = "release-mode failover smoke, run explicitly by scripts/ci.sh"]
    fn failover_smoke() {
        let rows = measure_failover_rows(15_000);
        for row in &rows {
            eprintln!(
                "failover drill {}: availability {:.4}, {} degraded answers, \
                 recovery {} ticks, {} retries, {} shed, {} ticks total",
                row.scenario,
                row.availability,
                row.degraded_answers,
                row.max_recovery_ticks,
                row.write_retries,
                row.shed_writes,
                row.ticks,
            );
            assert_failover_floors(row);
        }
        let degraded = measure_degraded_mode(15_000);
        eprintln!(
            "degraded_mode scenario: availability {:.4}, recovery {} ticks, \
             {} degraded answers",
            degraded.availability, degraded.recovery_ticks, degraded.degraded_answers,
        );
        assert!(degraded.availability >= DEGRADED_AVAILABILITY_FLOOR);
        assert!(degraded.recovery_ticks <= DEGRADED_RECOVERY_TICKS_CEILING);
    }
}
