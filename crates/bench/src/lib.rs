//! Shared helpers for the table-regeneration benches.
//!
//! Each `tableN_*` / `fig1_*` bench target is a `harness = false` binary
//! that prints its reproduction of the corresponding paper table using
//! [`fpga_model::report::Table`]; the `micro_*` targets are Criterion
//! benchmarks of the simulator itself. `cargo bench -p dsp-cam-bench`
//! regenerates everything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod failover;
pub mod search_rates;
pub mod update_latency;
pub mod workloads;

/// Print the standard bench header naming the reproduced artefact.
pub fn banner(artifact: &str, summary: &str) {
    println!();
    println!("================================================================");
    println!("Reproducing {artifact}");
    println!("{summary}");
    println!("================================================================");
}

/// Format an `Option<u64>` latency cell the way Table I does (`-` for
/// unreported).
#[must_use]
pub fn opt_cell(value: Option<u64>) -> String {
    value.map_or_else(|| "-".to_string(), |v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_cell_formats() {
        assert_eq!(opt_cell(None), "-");
        assert_eq!(opt_cell(Some(42)), "42");
    }
}
