//! Mixed search/update/delete measurement for the CAM-fronted write
//! buffer: per-op update latency percentiles and search throughput
//! under a write-heavy stream, buffered versus inline, recorded in
//! `BENCH_search.json` as `update_queue_rows`.
//!
//! The workload models the paper's update-queue motivation: a CAM that
//! must keep answering searches while absorbing bursts of table
//! maintenance. Each round interleaves `search_stream` batches with
//! single-word inserts and deletes at a fixed ratio; the buffered arm
//! stages the writes in the O(1) CAM-fronted queue and drains them in
//! the idle window *between* rounds (the drain is excluded from the
//! timed window — that is the design's entire point — but its volume is
//! reported honestly in [`UpdateLatencyRow::buffered_drained_ops`]).
//! The inline arm applies every write synchronously through the
//! replicated groups, exactly as a bufferless unit must.

use std::hint::black_box;
use std::time::Instant;

use dsp_cam_core::prelude::*;

/// A search:update:delete operation ratio, in ops per round.
#[derive(Debug, Clone, Copy)]
pub struct UpdateMix {
    /// Keys streamed through `search_stream` per round.
    pub searches: usize,
    /// Single-word inserts per round.
    pub updates: usize,
    /// `delete_first` calls per round (targets keys inserted earlier in
    /// the same round, so every delete hits).
    pub deletes: usize,
}

impl UpdateMix {
    /// The canonical read-heavy mix (90:9:1).
    pub const READ_HEAVY: UpdateMix = UpdateMix {
        searches: 90,
        updates: 9,
        deletes: 1,
    };

    /// The canonical write-heavy mix (50:45:5) — the one the release
    /// floors are enforced on.
    pub const WRITE_HEAVY: UpdateMix = UpdateMix {
        searches: 50,
        updates: 45,
        deletes: 5,
    };

    /// `"search:update:delete"` label used in the JSON artefact.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}:{}:{}", self.searches, self.updates, self.deletes)
    }
}

/// Buffered-versus-inline update latency and search throughput under one
/// mix at one unit size.
#[derive(Debug, Clone, Copy)]
pub struct UpdateLatencyRow {
    /// Unit capacity in cells (four replicated groups share them).
    pub entries: usize,
    /// The search:update:delete ratio measured.
    pub mix: UpdateMix,
    /// Median per-op insert latency with the write buffer absorbing.
    pub buffered_update_p50_ns: f64,
    /// 99th-percentile insert latency with the write buffer absorbing.
    pub buffered_update_p99_ns: f64,
    /// Median per-op insert latency applied inline through the groups.
    pub inline_update_p50_ns: f64,
    /// 99th-percentile insert latency applied inline through the groups.
    pub inline_update_p99_ns: f64,
    /// Search keys/sec inside the mixed rounds, buffered arm.
    pub buffered_search_kps: f64,
    /// Search keys/sec inside the mixed rounds, inline arm.
    pub inline_search_kps: f64,
    /// Staged ops drained outside the timed windows (idle-window work
    /// the buffered arm still had to do — reported, not hidden).
    pub buffered_drained_ops: u64,
}

impl UpdateLatencyRow {
    /// Buffered over inline update p99 — must stay at or under
    /// [`UPDATE_P99_RATIO_CEILING`].
    #[must_use]
    pub fn p99_ratio(&self) -> f64 {
        self.buffered_update_p99_ns / self.inline_update_p99_ns
    }

    /// Buffered over inline search throughput under writes — must stay
    /// at or above [`SEARCH_UNDER_WRITES_FLOOR`] on the write-heavy mix.
    #[must_use]
    pub fn search_ratio(&self) -> f64 {
        self.buffered_search_kps / self.inline_search_kps
    }
}

/// Release-mode ceiling on [`UpdateLatencyRow::p99_ratio`] at 8192
/// entries under the write-heavy mix: absorbing an insert into the
/// staging queue must cost at most half of applying it inline through
/// the replicated groups, even at the latency tail.
pub const UPDATE_P99_RATIO_CEILING: f64 = 0.5;

/// Release-mode floor on [`UpdateLatencyRow::search_ratio`] at 8192
/// entries under the write-heavy mix: with updates absorbed off the
/// search path, mixed-stream search throughput must at least double
/// over the inline baseline.
pub const SEARCH_UNDER_WRITES_FLOOR: f64 = 2.0;

/// Fresh inserts land far above the prefilled search range so in-window
/// searches never touch a staged key (a touched-key search flushes the
/// buffer for read-your-writes — correct, but it would let the buffered
/// arm smuggle drain work into the timed window).
const FRESH_BASE: u64 = 1 << 30;

/// Keys streamed per `search_stream` call inside a round.
const STREAM_BATCH: usize = 10;

/// One op slot of the interleaved round schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MixSlot {
    /// One `search_stream` batch of up to [`STREAM_BATCH`] keys.
    Stream,
    Update,
    Delete,
}

/// Proportionally interleave the mix into a deterministic schedule
/// (largest-deficit round robin), so writes are spread through the
/// searches the way a real mixed stream arrives rather than batched at
/// one end. Updates lead deletes at every prefix, so a delete's target
/// (the oldest not-yet-deleted insert of the round) always exists.
fn schedule(mix: UpdateMix) -> Vec<MixSlot> {
    let streams = mix.searches.div_ceil(STREAM_BATCH);
    let weights = [
        (MixSlot::Update, mix.updates),
        (MixSlot::Stream, streams),
        (MixSlot::Delete, mix.deletes),
    ];
    let total: usize = weights.iter().map(|&(_, w)| w).sum();
    let mut emitted = [0usize; 3];
    let mut out = Vec::with_capacity(total);
    for slot in 0..total {
        // Pick the op type furthest behind its proportional share; ties
        // resolve in array order, so the heavier update stream leads.
        let (pick, _) = weights
            .iter()
            .enumerate()
            .filter(|&(i, &(_, w))| emitted[i] < w)
            .map(|(i, &(kind, w))| {
                (
                    i,
                    (w * (slot + 1)) as f64 / total as f64 - emitted[i] as f64,
                    kind,
                )
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _, kind)| (i, kind))
            .expect("slots remain while emitted < total");
        emitted[pick] += 1;
        out.push(weights[pick].0);
    }
    out
}

/// A four-group, pool-dispatched Turbo unit at `entries` total cells —
/// the replicated-group geometry where every inline write pays the
/// paper's real update bill (one write per group, through the worker
/// pool) — prefilled to half of its per-group capacity with the
/// canonical `i * 3` fixture.
fn mixed_unit(entries: usize, wbuf: Option<WriteBufferConfig>) -> CamUnit {
    let block_size = (entries / 4).min(256);
    let mut builder = UnitConfig::builder()
        .data_width(32)
        .block_size(block_size)
        .num_blocks(entries / block_size)
        .bus_width(512)
        .fidelity(FidelityMode::Turbo)
        .workers(4)
        .dispatch(DispatchMode::Pool);
    if let Some(policy) = wbuf {
        builder = builder.write_buffer(policy);
    }
    let config = builder.build().expect("bench geometry is valid");
    let mut unit = CamUnit::new(config).expect("constructible");
    unit.configure_groups(4)
        .expect("entries/block_size blocks split 4 ways");
    let prefill = entries / 8;
    let words: Vec<u64> = (0..prefill as u64).map(|i| i * 3).collect();
    unit.update(&words).expect("fits the replicated capacity");
    unit
}

/// The in-window search key pool: a deterministic hit/miss mix over the
/// prefilled range, disjoint from [`FRESH_BASE`] so no in-window search
/// ever touches a staged key.
fn search_pool(entries: usize) -> Vec<u64> {
    let prefill = (entries / 8) as u64;
    (0..256u64).map(|i| i * 7 % (prefill * 3)).collect()
}

/// Run one interleaved round on `unit`: time each insert individually
/// into `update_ns`, count streamed keys, and return the round's wall
/// clock. The schedule, keys and delete targets are identical for both
/// arms — only the unit's write path differs.
fn run_round(
    unit: &mut CamUnit,
    slots: &[MixSlot],
    pool: &[u64],
    mix: UpdateMix,
    round: usize,
    update_ns: &mut Vec<u64>,
) -> (u64, f64) {
    let mut inserted = 0u64;
    let mut deleted = 0u64;
    let mut streamed = 0u64;
    let mut batch = 0usize;
    let round_start = Instant::now();
    for &slot in slots {
        match slot {
            MixSlot::Stream => {
                let offset = (round * mix.searches + batch * STREAM_BATCH) % pool.len();
                let take = STREAM_BATCH.min(mix.searches - batch * STREAM_BATCH);
                let end = (offset + take).min(pool.len());
                black_box(unit.search_stream(black_box(&pool[offset..end])));
                streamed += (end - offset) as u64;
                batch += 1;
            }
            MixSlot::Update => {
                let word = [FRESH_BASE + inserted];
                let start = Instant::now();
                black_box(unit.update(black_box(&word))).expect("headroom reserved");
                update_ns.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
                inserted += 1;
            }
            MixSlot::Delete => {
                // Oldest not-yet-deleted insert of this round: always
                // present (updates lead deletes at every prefix).
                black_box(unit.delete_first(black_box(FRESH_BASE + deleted)));
                deleted += 1;
            }
        }
    }
    let secs = round_start.elapsed().as_secs_f64();
    // Idle-window housekeeping, outside the timed round: drain whatever
    // is staged, then remove the round's surviving fresh keys so
    // occupancy returns to the prefill level and rounds stay
    // statistically identical. Both arms do the same walk.
    unit.flush_write_buffer();
    for idx in deleted..inserted {
        unit.delete_first(FRESH_BASE + idx);
    }
    unit.flush_write_buffer();
    (streamed, secs)
}

/// Measure one [`UpdateLatencyRow`]: the buffered and inline arms run
/// the identical round schedule, interleaved round by round so clock
/// drift and cache noise hit both equally, until each side has
/// accumulated `min_millis` of in-window time (and at least
/// `min_rounds` rounds).
#[must_use]
pub fn measure_update_latency(
    entries: usize,
    mix: UpdateMix,
    min_millis: u128,
    min_rounds: usize,
) -> UpdateLatencyRow {
    let wbuf = WriteBufferConfig {
        // One round's writes always fit: absorbing is the steady state,
        // overflow fallback is left to the differential tests.
        capacity: (mix.updates + mix.deletes).max(64),
        drain_per_tick: 4,
        bypass: false,
    };
    let mut buffered = mixed_unit(entries, Some(wbuf));
    let mut inline = mixed_unit(entries, None);
    let slots = schedule(mix);
    let pool = search_pool(entries);
    let mut buffered_ns = Vec::new();
    let mut inline_ns = Vec::new();
    let (mut b_keys, mut b_secs) = (0u64, 0.0f64);
    let (mut i_keys, mut i_secs) = (0u64, 0.0f64);
    let mut rounds = 0usize;
    while rounds < min_rounds
        || b_secs * 1000.0 < min_millis as f64
        || i_secs * 1000.0 < min_millis as f64
    {
        let (keys, secs) = run_round(&mut inline, &slots, &pool, mix, rounds, &mut inline_ns);
        i_keys += keys;
        i_secs += secs;
        let (keys, secs) = run_round(&mut buffered, &slots, &pool, mix, rounds, &mut buffered_ns);
        b_keys += keys;
        b_secs += secs;
        rounds += 1;
        if rounds >= 65_536 {
            break;
        }
    }
    UpdateLatencyRow {
        entries,
        mix,
        buffered_update_p50_ns: percentile_ns(&mut buffered_ns, 50.0),
        buffered_update_p99_ns: percentile_ns(&mut buffered_ns, 99.0),
        inline_update_p50_ns: percentile_ns(&mut inline_ns, 50.0),
        inline_update_p99_ns: percentile_ns(&mut inline_ns, 99.0),
        buffered_search_kps: b_keys as f64 / b_secs,
        inline_search_kps: i_keys as f64 / i_secs,
        buffered_drained_ops: buffered.write_buffer_report().drained_ops,
    }
}

/// Nearest-rank percentile over `samples` (sorted in place).
fn percentile_ns(samples: &mut [u64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of an empty sample");
    samples.sort_unstable();
    let rank = ((q / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1] as f64
}

/// Measure both canonical mixes at each of `sizes` entries.
#[must_use]
pub fn measure_update_latency_rows(
    sizes: &[usize],
    min_millis: u128,
    min_rounds: usize,
) -> Vec<UpdateLatencyRow> {
    sizes
        .iter()
        .flat_map(|&entries| {
            [UpdateMix::READ_HEAVY, UpdateMix::WRITE_HEAVY]
                .into_iter()
                .map(move |mix| (entries, mix))
        })
        .map(|(entries, mix)| measure_update_latency(entries, mix, min_millis, min_rounds))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_matches_the_mix_and_updates_lead_deletes() {
        for mix in [UpdateMix::READ_HEAVY, UpdateMix::WRITE_HEAVY] {
            let slots = schedule(mix);
            let count = |kind| slots.iter().filter(|&&s| s == kind).count();
            assert_eq!(count(MixSlot::Update), mix.updates, "{}", mix.label());
            assert_eq!(count(MixSlot::Delete), mix.deletes, "{}", mix.label());
            assert_eq!(
                count(MixSlot::Stream),
                mix.searches.div_ceil(STREAM_BATCH),
                "{}",
                mix.label()
            );
            let mut updates = 0usize;
            let mut deletes = 0usize;
            for slot in slots {
                match slot {
                    MixSlot::Update => updates += 1,
                    MixSlot::Delete => {
                        deletes += 1;
                        assert!(
                            updates >= deletes,
                            "delete #{deletes} has no insert to target in {}",
                            mix.label()
                        );
                    }
                    MixSlot::Stream => {}
                }
            }
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut samples: Vec<u64> = (1..=100).collect();
        assert!((percentile_ns(&mut samples, 50.0) - 50.0).abs() < 1e-9);
        assert!((percentile_ns(&mut samples, 99.0) - 99.0).abs() < 1e-9);
        let mut one = vec![7u64];
        assert!((percentile_ns(&mut one, 99.0) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn measurement_is_sane_at_reduced_size() {
        // The 0.5x / 2x floors are release-only (update_queue_smoke);
        // in debug the measurement just has to produce finite, positive
        // numbers from a round count large enough to fill the p99 rank.
        let row = measure_update_latency(512, UpdateMix::WRITE_HEAVY, 5, 3);
        assert!(row.buffered_update_p50_ns > 0.0);
        assert!(row.buffered_update_p99_ns >= row.buffered_update_p50_ns);
        assert!(row.inline_update_p99_ns >= row.inline_update_p50_ns);
        assert!(row.buffered_search_kps > 0.0 && row.buffered_search_kps.is_finite());
        assert!(row.inline_search_kps > 0.0 && row.inline_search_kps.is_finite());
        assert!(row.p99_ratio() > 0.0 && row.search_ratio() > 0.0);
        assert!(
            row.buffered_drained_ops > 0,
            "the buffered arm must actually have staged and drained writes"
        );
    }

    #[test]
    fn both_arms_agree_on_contents_after_a_measured_round() {
        // The measurement's correctness backstop: after rounds plus
        // housekeeping, buffered and inline units hold identical
        // entries (the differential proptests cover the general case;
        // this pins the bench's own key discipline).
        let mix = UpdateMix::WRITE_HEAVY;
        let mut buffered = mixed_unit(512, Some(buffered_config(mix)));
        let mut inline = mixed_unit(512, None);
        let slots = schedule(mix);
        let pool = search_pool(512);
        let mut scratch = Vec::new();
        for round in 0..3 {
            run_round(&mut buffered, &slots, &pool, mix, round, &mut scratch);
            run_round(&mut inline, &slots, &pool, mix, round, &mut scratch);
        }
        assert_eq!(buffered.write_buffer_depth(), 0, "housekeeping drains");
        assert_eq!(buffered.len(), inline.len(), "occupancy must match");
        for &key in pool.iter().take(32) {
            assert_eq!(buffered.search(key), inline.search(key), "key {key}");
        }
        for idx in 0..mix.updates as u64 {
            assert!(
                !buffered.search(FRESH_BASE + idx).is_match(),
                "housekeeping must remove fresh key {idx}"
            );
        }
    }

    fn buffered_config(mix: UpdateMix) -> WriteBufferConfig {
        WriteBufferConfig {
            capacity: (mix.updates + mix.deletes).max(64),
            drain_per_tick: 4,
            bypass: false,
        }
    }

    /// Release-mode floor regression for the update queue: buffered
    /// update p99 at most half of inline, and search throughput under
    /// the write-heavy mix at least doubled, at 8192 entries. Run by
    /// `scripts/ci.sh` as
    /// `cargo test --release -p dsp-cam-bench -- --ignored`; too slow
    /// (and too noisy) for the default debug test pass, hence ignored.
    #[test]
    #[ignore = "release-mode perf smoke, run explicitly by scripts/ci.sh"]
    fn update_queue_smoke() {
        let row = measure_update_latency(8192, UpdateMix::WRITE_HEAVY, 120, 8);
        assert!(
            row.p99_ratio() <= UPDATE_P99_RATIO_CEILING,
            "buffered update p99 must be <= {UPDATE_P99_RATIO_CEILING}x inline under \
             50:45:5 at 8192 entries, got {:.3}x ({:.0} ns vs {:.0} ns)",
            row.p99_ratio(),
            row.buffered_update_p99_ns,
            row.inline_update_p99_ns
        );
        assert!(
            row.search_ratio() >= SEARCH_UNDER_WRITES_FLOOR,
            "buffered search throughput must be >= {SEARCH_UNDER_WRITES_FLOOR}x inline under \
             50:45:5 at 8192 entries, got {:.2}x ({:.0} vs {:.0} keys/s)",
            row.search_ratio(),
            row.buffered_search_kps,
            row.inline_search_kps
        );
    }
}
