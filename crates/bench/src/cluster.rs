//! The sharding cluster's throughput race and migration invariant.
//!
//! Per-operation cost on the Turbo tier grows with unit capacity (every
//! search and delete walks the whole bit-sliced plane set), so N
//! quarter-size shards answer a mixed workload substantially faster
//! than one unit of the same total capacity — even replayed
//! *sequentially* on a single core, which is how [`measure_cluster_rows`]
//! races them: the write-heavy trace is split per shard by the cluster's
//! consistent-hash ring, each subtrace replays through the same
//! transaction-level arm as the baseline, and the shard replay times
//! are *summed*. Any parallel host would only widen the gap.
//!
//! Replay windows are timed in **consumed CPU time** (Linux
//! `/proc/thread-self/stat`, wall-clock elsewhere): the race runs on
//! shared hosts where a competing tenant can steal double-digit
//! percentages of one arm's wall-clock window, and CPU time charges
//! neither arm for cycles it never got.
//!
//! [`measure_migration_invariant`] drives the cycle-accurate ingest loop
//! across a live slot migration and checks the protocol's contract:
//! zero dropped queries, every routed record completed, exactly one
//! cutover.

use std::time::Instant;

use dsp_cam_cluster::{replay_cluster, CamCluster, HashRing, IngestConfig, MigrationPlan};
use dsp_cam_core::prelude::*;
use dsp_cam_workload::{
    compress_gaps, generate, split_trace, Arrival, OpMix, Trace, TraceOp, WorkloadConfig,
};

/// Release-mode regression floor on the 4-shard-over-1-shard throughput
/// ratio under the 50:45:5 write-heavy mix at 8192 total entries.
/// Measured ~3.0–3.5× on the reference machine (searches and deletes
/// speed up ~4× at quarter capacity, raw update appends do not); 2.5×
/// leaves noise margin while still requiring the sharding win.
pub const CLUSTER_SPEEDUP_FLOOR: f64 = 2.5;

/// Sequential-sum throughput of one shard count in the cluster race.
#[derive(Debug, Clone, Copy)]
pub struct ClusterRow {
    /// Number of shards the trace was split across.
    pub shards: usize,
    /// Capacity per shard in entries (total is fixed across rows).
    pub entries_per_shard: usize,
    /// Application operations replayed (identical across rows).
    pub app_ops: u64,
    /// Summed per-shard replay time: consumed CPU seconds on Linux,
    /// wall-clock where a CPU clock is unavailable.
    pub elapsed_secs: f64,
    /// Updates rejected at admission — must match across rows, or the
    /// race compared different amounts of work.
    pub update_rejections: u64,
}

impl ClusterRow {
    /// Application ops/sec over the summed sequential replay time.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        self.app_ops as f64 / self.elapsed_secs
    }
}

/// The calling thread's consumed CPU time in seconds, read from
/// `/proc/thread-self/stat` (utime + stime, always in `USER_HZ` = 100
/// ticks/s regardless of kernel `HZ`). `None` off Linux or on any
/// parse surprise — callers fall back to wall-clock.
fn thread_cpu_secs() -> Option<f64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let stat = std::fs::read_to_string("/proc/thread-self/stat")
        .or_else(|_| std::fs::read_to_string("/proc/self/stat"))
        .ok()?;
    // Fields 14/15 (utime/stime) counted after the parenthesised comm,
    // which may itself contain spaces.
    let mut fields = stat.rsplit(')').next()?.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some((utime + stime) as f64 / 100.0)
}

/// Time one replay window: consumed CPU seconds when the clock is
/// available and advanced, wall-clock otherwise.
fn timed_secs<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let cpu_before = thread_cpu_secs();
    let wall = Instant::now();
    let out = f();
    let wall = wall.elapsed().as_secs_f64();
    let secs = match (cpu_before, thread_cpu_secs()) {
        (Some(before), Some(after)) if after > before => after - before,
        _ => wall,
    };
    (out, secs)
}

/// What the ingest loop observed across a live migration.
#[derive(Debug, Clone, Copy)]
pub struct MigrationInvariantRow {
    /// Sub-operations issued into shard pipelines.
    pub issued: u64,
    /// Completions harvested (must equal `issued`).
    pub completions: u64,
    /// Issued minus completed at quiescence — the invariant is 0.
    pub dropped: u64,
    /// Searches answered by the frozen replica during the window.
    pub frozen_answers: u64,
    /// Stall cycles of the completed migration.
    pub stall_cycles: u64,
    /// Total lockstep cycles of the replay.
    pub ticks: u64,
}

/// The canonical write-heavy (50:45:5) cluster trace: Zipfian keys,
/// live-set watermark under the 8192-entry total capacity, eviction
/// gaps clamped.
#[must_use]
pub fn cluster_trace(ops: u64, seed: u64) -> Trace {
    generate(&WorkloadConfig {
        seed,
        ops,
        key_space: 16_384,
        zipf_s: 0.8,
        mix: OpMix::WRITE_HEAVY,
        // Point searches, uncoalesced: the key-parallel batch kernel
        // answers a whole coalesced stream batch in roughly one plane
        // walk, which would shrink exactly the capacity-scaling search
        // work the shard race exists to measure.
        stream_batch: 1,
        arrival: Arrival::BackToBack,
        churn_per_mille: 50,
        // A high prefill plus a high live watermark keep the Turbo
        // occupancy scans (the part of the mix that scales with shard
        // size) dominant over fixed per-op replay overheads for the
        // whole trace — churn alone would take ~100k ops to ramp the
        // live set up from a small prefill. ~83% fill per 2048-entry
        // shard still leaves >5 sigma of ring-hash imbalance headroom,
        // so admission outcomes stay identical across race arms.
        prefill: 6000,
        max_live: Some(6800),
        eviction_min_gap: 1,
    })
    .expect("canonical cluster workload config is valid")
}

/// The race's transaction-level replay loop: the same `CamUnit` calls
/// as `dsp_cam_workload::replay_direct`, but tallying as it goes
/// instead of retaining every completion — a 1M-op trace would
/// otherwise churn tens of megabytes of completions through the
/// allocator, a fixed per-op tax that dilutes the capacity-scaling
/// signal the race exists to measure (and evicts the small shards'
/// L1-resident planes). Returns the admission-rejection count, the
/// cross-arm work-equality check.
fn race_replay(trace: &Trace, unit: &mut CamUnit) -> u64 {
    if !trace.prefill.is_empty() {
        unit.update(trace.prefill_words())
            .expect("prefill must fit the shard");
    }
    unit.flush_write_buffer();
    let mut rejections = 0u64;
    for record in &trace.records {
        match &record.op {
            TraceOp::Search(key) => {
                let _ = unit.search(*key);
            }
            TraceOp::SearchStream(keys) => {
                let _ = unit.search_stream(keys);
            }
            TraceOp::Update(word) => {
                rejections += u64::from(unit.update(&[*word]).is_err());
            }
            TraceOp::Delete { key, .. } => {
                let _ = unit.delete_first(*key);
            }
        }
    }
    unit.flush_write_buffer();
    rejections
}

/// A Turbo-tier shard unit of `entries` capacity in the canonical bench
/// geometry (256-entry blocks, 512-bit bus, single group).
fn shard_unit(entries: usize) -> CamUnit {
    let config = UnitConfig::builder()
        .data_width(32)
        .block_size(256)
        .num_blocks(entries / 256)
        .bus_width(512)
        .fidelity(FidelityMode::Turbo)
        .build()
        .expect("bench geometry is valid");
    CamUnit::new(config).expect("constructible")
}

/// Race shard counts over one `ops`-op write-heavy trace at
/// `total_entries` total capacity: for each count, split the trace by a
/// consistent-hash ring, replay every subtrace sequentially through the
/// transaction-level arm, and sum the wall-clocks. The single-shard row
/// is the baseline the speedup floor divides against.
#[must_use]
pub fn measure_cluster_rows(
    total_entries: usize,
    ops: u64,
    shard_counts: &[usize],
) -> Vec<ClusterRow> {
    let trace = cluster_trace(ops, 0xC1A5);
    let app_ops = trace.counts().app_ops();
    let per_count: Vec<Vec<Trace>> = shard_counts
        .iter()
        .map(|&shards| {
            let ring = HashRing::new(64, shards);
            split_trace(&trace, shards, |k| ring.shard_of(k))
                .iter()
                .map(compress_gaps)
                .collect()
        })
        .collect();
    // Three interleaved trials with the minimum kept *per subtrace*:
    // every trial times each arm back-to-back so host-wide slowdowns
    // hit the arms equally, and each subtrace window keeps its own
    // across-trial minimum. CPU-time windows (see [`timed_secs`])
    // already exclude cycles stolen by other tenants; the per-window
    // minimum additionally sheds their second-order tax (cache and
    // branch-predictor pollution around context switches), which a
    // burst would have to re-levy on the *same* subtrace in every
    // trial to bias the sum.
    let mut elapsed: Vec<Vec<f64>> = per_count
        .iter()
        .map(|subtraces| vec![f64::INFINITY; subtraces.len()])
        .collect();
    let mut rejections: Vec<u64> = vec![0; shard_counts.len()];
    for _ in 0..3 {
        for (i, (&shards, subtraces)) in shard_counts.iter().zip(&per_count).enumerate() {
            let mut trial_rejections = 0u64;
            for (j, subtrace) in subtraces.iter().enumerate() {
                let mut unit = shard_unit(total_entries / shards);
                let (rejected, secs) = timed_secs(|| race_replay(subtrace, &mut unit));
                elapsed[i][j] = elapsed[i][j].min(secs);
                trial_rejections += rejected;
            }
            // Deterministic replay: identical across trials.
            rejections[i] = trial_rejections;
        }
    }
    shard_counts
        .iter()
        .enumerate()
        .map(|(i, &shards)| ClusterRow {
            shards,
            entries_per_shard: total_entries / shards,
            app_ops,
            elapsed_secs: elapsed[i].iter().sum(),
            update_rejections: rejections[i],
        })
        .collect()
}

/// Drive the cycle-accurate ingest loop over a 4-shard cluster with a
/// live migration opening a third of the way in, and report the
/// protocol's observables. The caller (and the release smoke) asserts
/// `dropped == 0` — the zero-dropped-query invariant.
#[must_use]
pub fn measure_migration_invariant(ops: u64) -> MigrationInvariantRow {
    let trace = generate(&WorkloadConfig {
        seed: 0x319,
        ops,
        key_space: 8192,
        zipf_s: 0.8,
        mix: OpMix::WRITE_HEAVY,
        stream_batch: 8,
        arrival: Arrival::BackToBack,
        churn_per_mille: 50,
        prefill: 256,
        max_live: Some(2500),
        eviction_min_gap: 1,
    })
    .expect("migration workload config is valid");
    let config = UnitConfig::builder()
        .data_width(32)
        .block_size(256)
        .num_blocks(4)
        .bus_width(512)
        .fidelity(FidelityMode::Turbo)
        .write_buffer(WriteBufferConfig {
            capacity: 4096,
            // One staged word per idle tick keeps the migration window
            // open for ~a slot's worth of cycles, so in-window frozen
            // reads actually occur.
            drain_per_tick: 1,
            bypass: false,
        })
        .build()
        .expect("bench geometry is valid");
    // 16 coarse slots: each covers ~6% of the key space, so the moved
    // slot is large enough that searches land in the open window.
    let mut cluster = CamCluster::new(config, 4, 16).expect("constructible");
    let slot = cluster.ring().slot_of(trace.prefill_words()[0]);
    let dest = (cluster.ring().assignment(slot) + 1) % 4;
    let outcome = replay_cluster(
        &trace,
        &mut cluster,
        &IngestConfig {
            queue_capacity: 64,
            migrate: Some(MigrationPlan {
                after_records: trace.records.len() / 3,
                slot,
                dest,
            }),
            faults: None,
        },
    )
    .expect("ingest replay admits the bounded live set");
    assert_eq!(
        cluster.counters().migrations_completed,
        1,
        "the planned migration must reach cutover"
    );
    MigrationInvariantRow {
        issued: outcome.issued,
        completions: outcome.completions,
        dropped: outcome.dropped,
        frozen_answers: outcome.frozen_answers,
        stall_cycles: outcome.migration_stalls.first().copied().unwrap_or(0),
        ticks: outcome.ticks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_race_replays_identical_work_per_arm() {
        // Debug-sized race: the >= 2.5x floor is release-only
        // (cluster_smoke); here both arms must replay the same app-op
        // count with the same admission outcomes.
        let rows = measure_cluster_rows(8192, 2_000, &[1, 4]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].app_ops, rows[1].app_ops);
        assert_eq!(
            rows[0].update_rejections, rows[1].update_rejections,
            "shard split must not change admission outcomes"
        );
        assert!(rows.iter().all(|r| r.elapsed_secs > 0.0));
        assert_eq!(rows[0].entries_per_shard, 8192);
        assert_eq!(rows[1].entries_per_shard, 2048);
    }

    #[test]
    fn migration_window_outlives_a_search_flush() {
        // The copy-engine cursor must hold the window open for at least
        // `moved.len()` cycles even when a read-your-writes search
        // flush applies the whole staged batch physically in one shot
        // (unit.rs `sync_for_keys` drains the full buffer on a touched
        // key) — the regression that collapsed the window to ~1 cycle.
        let config = UnitConfig::builder()
            .data_width(32)
            .block_size(256)
            .num_blocks(4)
            .bus_width(512)
            .fidelity(FidelityMode::Turbo)
            .write_buffer(WriteBufferConfig {
                capacity: 4096,
                drain_per_tick: 1,
                bypass: false,
            })
            .build()
            .unwrap();
        let mut cluster = CamCluster::new(config, 4, 16).unwrap();
        let words: Vec<u64> = (0..1000u64).collect();
        cluster.prefill(&words).unwrap();
        cluster.quiesce();
        let slot = cluster.ring().slot_of(0);
        let dest = (cluster.ring().assignment(slot) + 1) % 4;
        cluster.begin_migration(slot, dest).unwrap();
        let staged = cluster.shard(dest).buffer_depth();
        let opened_at = cluster.cycle();
        assert!(staged > 0, "the slot must stage words into the dest");
        // A write to a migrating-slot key lands in the dest buffer;
        // searching it back triggers the full read-your-writes flush.
        let moved_key = words
            .iter()
            .copied()
            .find(|&w| cluster.ring().slot_of(w) == slot)
            .expect("slot holds prefilled words");
        cluster.update(moved_key).unwrap();
        assert!(cluster.search(moved_key).is_match());
        while cluster.migration_in_progress() {
            cluster.tick();
            assert!(
                cluster.cycle() - opened_at < 100_000,
                "migration must reach cutover"
            );
        }
        let window = cluster.cycle() - opened_at;
        assert!(
            window >= staged as u64,
            "flush must not collapse the copy window: {window} cycles for {staged} staged words"
        );
    }

    #[test]
    fn migration_invariant_holds_at_debug_size() {
        let row = measure_migration_invariant(1_500);
        assert_eq!(row.dropped, 0, "zero-dropped-query invariant");
        assert_eq!(row.issued, row.completions);
        assert!(row.ticks > 0);
    }

    /// Release-mode floor regression for the sharding speedup and the
    /// migration invariant. Run by `scripts/ci.sh` as
    /// `cargo test --release -p dsp-cam-bench cluster_smoke -- --ignored`;
    /// too slow for the default debug test pass, hence ignored.
    #[test]
    #[ignore = "release-mode perf smoke, run explicitly by scripts/ci.sh"]
    fn cluster_smoke() {
        // The acceptance-criterion race: the full 1M-op write-heavy
        // trace, 4 shards against one unit of the same total capacity.
        let rows = measure_cluster_rows(8192, 1_000_000, &[1, 4]);
        let baseline = &rows[0];
        let sharded = &rows[1];
        eprintln!(
            "cluster race: 1 shard {:.0} ops/s, 4 shards {:.0} ops/s",
            baseline.ops_per_sec(),
            sharded.ops_per_sec()
        );
        assert_eq!(baseline.update_rejections, sharded.update_rejections);
        let speedup = sharded.ops_per_sec() / baseline.ops_per_sec();
        assert!(
            speedup >= CLUSTER_SPEEDUP_FLOOR,
            "4-shard sequential-sum throughput must be >= {CLUSTER_SPEEDUP_FLOOR}x the \
             single-unit baseline at 8192 total entries, got {speedup:.2}x \
             ({:.0} vs {:.0} ops/s)",
            sharded.ops_per_sec(),
            baseline.ops_per_sec()
        );
        let migration = measure_migration_invariant(15_000);
        assert_eq!(
            migration.dropped, 0,
            "live migration must not drop a query (issued {}, completed {})",
            migration.issued, migration.completions
        );
        assert!(migration.frozen_answers > 0, "the window must serve reads");
    }
}
