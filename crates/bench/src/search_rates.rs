//! Host-side search-rate measurement for the three execution tiers, and
//! the machine-readable `BENCH_search.json` artefact tracked across PRs.
//!
//! Both `micro_cam_ops` and `table8_unit_perf` call
//! [`measure_search_rates`] + [`write_bench_search_json`] so the shadow
//! tiers' speedups over the bit-accurate DSP simulation are recorded in
//! one canonical place regardless of which bench ran last.

use std::hint::black_box;
use std::io;
use std::path::PathBuf;
use std::time::Instant;

use dsp_cam_core::prelude::*;

/// Searches/sec of all three tiers at one unit size.
#[derive(Debug, Clone, Copy)]
pub struct SearchRateRow {
    /// Unit capacity in entries.
    pub entries: usize,
    /// Host searches/sec through the `Turbo` bit-sliced tier.
    pub turbo_sps: f64,
    /// Host searches/sec through the `Fast` match-index tier.
    pub fast_sps: f64,
    /// Host searches/sec through the `BitAccurate` DSP48E2 tier.
    pub accurate_sps: f64,
}

impl SearchRateRow {
    /// Fast-tier speedup over the bit-accurate tier.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.fast_sps / self.accurate_sps
    }

    /// Turbo-tier speedup over the fast tier.
    #[must_use]
    pub fn turbo_speedup(&self) -> f64 {
        self.turbo_sps / self.fast_sps
    }
}

/// The canonical sizes recorded in `BENCH_search.json`.
pub const BENCH_SIZES: [usize; 3] = [512, 2048, 8192];

fn unit_of(entries: usize, fidelity: FidelityMode) -> CamUnit {
    let block_size = if entries >= 256 { 256 } else { 128 };
    let config = UnitConfig::builder()
        .data_width(32)
        .block_size(block_size)
        .num_blocks(entries / block_size)
        .bus_width(512)
        .fidelity(fidelity)
        .build()
        .expect("bench geometry is valid");
    let mut unit = CamUnit::new(config).expect("constructible");
    let words: Vec<u64> = (0..entries as u64).map(|i| i * 3).collect();
    unit.update(&words).expect("fits");
    unit
}

/// Time broadcast searches on `unit` until the sample is stable enough
/// (at least 8 searches and ~120 ms of wall clock, whichever is later).
fn searches_per_sec(unit: &mut CamUnit) -> f64 {
    // A mix of hits and misses, warmed up before timing starts.
    let keys: [u64; 4] = [3, 7, 300, 1_000_003];
    for &k in &keys {
        black_box(unit.search(black_box(k)));
    }
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        for &k in &keys {
            black_box(unit.search(black_box(k)));
        }
        iters += keys.len() as u64;
        let elapsed = start.elapsed();
        if (iters >= 8 && elapsed.as_millis() >= 120) || iters >= 4_000_000 {
            return iters as f64 / elapsed.as_secs_f64();
        }
    }
}

/// Measure all three tiers at each of `sizes` entries.
#[must_use]
pub fn measure_search_rates(sizes: &[usize]) -> Vec<SearchRateRow> {
    sizes
        .iter()
        .map(|&entries| {
            let accurate_sps = searches_per_sec(&mut unit_of(entries, FidelityMode::BitAccurate));
            let fast_sps = searches_per_sec(&mut unit_of(entries, FidelityMode::Fast));
            let turbo_sps = searches_per_sec(&mut unit_of(entries, FidelityMode::Turbo));
            SearchRateRow {
                entries,
                turbo_sps,
                fast_sps,
                accurate_sps,
            }
        })
        .collect()
}

/// Serialise `rows` to `BENCH_search.json` at the repository root,
/// recording which bench produced them. Returns the written path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_search_json(source: &str, rows: &[SearchRateRow]) -> io::Result<PathBuf> {
    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_search.json"
    ));
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!("  \"source\": \"{source}\",\n"));
    body.push_str(
        "  \"metric\": \"host searches/sec, Turbo (bit-sliced) vs Fast (match-index) vs \
         BitAccurate (DSP48E2 simulation)\",\n",
    );
    body.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"entries\": {}, \"turbo_searches_per_sec\": {:.1}, \
             \"fast_searches_per_sec\": {:.1}, \
             \"bit_accurate_searches_per_sec\": {:.1}, \"speedup\": {:.2}, \
             \"turbo_speedup_over_fast\": {:.2}}}{}\n",
            row.entries,
            row.turbo_sps,
            row.fast_sps,
            row.accurate_sps,
            row.speedup(),
            row.turbo_speedup(),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Measure, write the artefact, print a summary, and enforce the
/// tier speedup floors at 8192 entries.
///
/// # Panics
///
/// Panics if the fast tier is below 10× the bit-accurate tier, or the
/// turbo tier below 5× the fast tier, at 8192 entries — each tier's
/// reason to exist.
pub fn emit_bench_search_json(source: &str) {
    let rows = measure_search_rates(&BENCH_SIZES);
    println!();
    println!("Search-tier rates (host):");
    for row in &rows {
        println!(
            "  {:>5} entries: turbo {:>12.0} searches/s, fast {:>12.0} searches/s, \
             bit-accurate {:>10.0} searches/s (fast {:>6.1}x, turbo {:>5.1}x fast)",
            row.entries,
            row.turbo_sps,
            row.fast_sps,
            row.accurate_sps,
            row.speedup(),
            row.turbo_speedup(),
        );
    }
    match write_bench_search_json(source, &rows) {
        Ok(path) => println!("(json: {})", path.display()),
        Err(err) => println!("(failed to write BENCH_search.json: {err})"),
    }
    let at_8k = rows
        .iter()
        .find(|r| r.entries == 8192)
        .expect("8192 is a canonical size");
    assert!(
        at_8k.speedup() >= 10.0,
        "fast tier must be >= 10x bit-accurate at 8192 entries, got {:.1}x",
        at_8k.speedup()
    );
    assert!(
        at_8k.turbo_speedup() >= 5.0,
        "turbo tier must be >= 5x fast at 8192 entries, got {:.1}x",
        at_8k.turbo_speedup()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tiers_agree_on_results_in_the_bench_geometry() {
        let mut accurate = unit_of(512, FidelityMode::BitAccurate);
        let mut fast = unit_of(512, FidelityMode::Fast);
        let mut turbo = unit_of(512, FidelityMode::Turbo);
        for key in [0u64, 3, 5, 1533, 1_000_003] {
            let want = accurate.search(key);
            assert_eq!(want, fast.search(key), "fast, key {key}");
            assert_eq!(want, turbo.search(key), "turbo, key {key}");
        }
    }

    #[test]
    fn json_rows_roundtrip_shape() {
        let rows = [SearchRateRow {
            entries: 512,
            turbo_sps: 2.0e7,
            fast_sps: 2.0e6,
            accurate_sps: 1.0e5,
        }];
        assert!((rows[0].speedup() - 20.0).abs() < 1e-9);
        assert!((rows[0].turbo_speedup() - 10.0).abs() < 1e-9);
    }
}
