//! Host-side search-rate measurement for the three execution tiers, and
//! the machine-readable `BENCH_search.json` artefact tracked across PRs.
//!
//! Both `micro_cam_ops` and `table8_unit_perf` call
//! [`measure_search_rates`] + [`write_bench_search_json`] so the shadow
//! tiers' speedups over the bit-accurate DSP simulation are recorded in
//! one canonical place regardless of which bench ran last.

use std::hint::black_box;
use std::io;
use std::path::PathBuf;
use std::time::Instant;

use dsp_cam_core::prelude::*;

use crate::cluster::{ClusterRow, MigrationInvariantRow, CLUSTER_SPEEDUP_FLOOR};
use crate::failover::{
    assert_failover_floors, FailoverRow, FAILOVER_AVAILABILITY_FLOOR,
    FAILOVER_RECOVERY_TICKS_CEILING,
};
use crate::update_latency::{
    measure_update_latency_rows, UpdateLatencyRow, UpdateMix, SEARCH_UNDER_WRITES_FLOOR,
    UPDATE_P99_RATIO_CEILING,
};

/// Searches/sec of all three tiers at one unit size.
#[derive(Debug, Clone, Copy)]
pub struct SearchRateRow {
    /// Unit capacity in entries.
    pub entries: usize,
    /// Host searches/sec through the `Turbo` bit-sliced tier.
    pub turbo_sps: f64,
    /// Host searches/sec through the `Fast` match-index tier.
    pub fast_sps: f64,
    /// Host searches/sec through the `BitAccurate` DSP48E2 tier.
    pub accurate_sps: f64,
}

impl SearchRateRow {
    /// Fast-tier speedup over the bit-accurate tier.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.fast_sps / self.accurate_sps
    }

    /// Turbo-tier speedup over the fast tier.
    #[must_use]
    pub fn turbo_speedup(&self) -> f64 {
        self.turbo_sps / self.fast_sps
    }
}

/// The canonical sizes recorded in `BENCH_search.json`.
pub const BENCH_SIZES: [usize; 3] = [512, 2048, 8192];

/// The large-capacity scale-up sizes (64k / 256k / 1M entries) measured
/// on the Turbo `search_stream` path and recorded in `BENCH_search.json`
/// as `large_rows`.
pub const LARGE_BENCH_SIZES: [usize; 3] = [65_536, 262_144, 1_048_576];

/// Release-mode regression floors on
/// [`LargeScaleRow::per_entry`] (stream keys/sec divided by entries) at
/// each large size. A memory-bound plane walk degrades with capacity —
/// gently while the planes fit in cache, sharply once they spill to
/// DRAM (past ~64k entries here) — so per-entry throughput at fixed
/// size is the invariant to hold. Floors sit ~3× under measured release
/// rates (1.56 / 0.074 / 0.0058 on the reference machine) to absorb
/// machine noise.
pub const LARGE_SCALE_PER_ENTRY_FLOORS: [(usize, f64); 3] =
    [(65_536, 0.5), (262_144, 0.02), (1_048_576, 0.0015)];

/// Release-mode floor on the batched-over-scalar Turbo `search_stream`
/// throughput ratio at 8192 entries with the default 32-key batch width
/// — the key-parallel kernel's reason to exist.
pub const BATCH_VS_SCALAR_FLOOR: f64 = 2.0;

fn unit_of(entries: usize, fidelity: FidelityMode) -> CamUnit {
    let block_size = if entries >= 256 { 256 } else { 128 };
    let config = UnitConfig::builder()
        .data_width(32)
        .block_size(block_size)
        .num_blocks(entries / block_size)
        .bus_width(512)
        .fidelity(fidelity)
        .build()
        .expect("bench geometry is valid");
    let mut unit = CamUnit::new(config).expect("constructible");
    let words: Vec<u64> = (0..entries as u64).map(|i| i * 3).collect();
    unit.update(&words).expect("fits");
    unit
}

/// Time broadcast searches on `unit` until the sample is stable enough
/// (at least 8 searches and `min_millis` of wall clock, whichever is
/// later).
fn searches_per_sec_for(unit: &mut CamUnit, min_millis: u128) -> f64 {
    // A mix of hits and misses, warmed up before timing starts.
    let keys: [u64; 4] = [3, 7, 300, 1_000_003];
    for &k in &keys {
        black_box(unit.search(black_box(k)));
    }
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        for &k in &keys {
            black_box(unit.search(black_box(k)));
        }
        iters += keys.len() as u64;
        let elapsed = start.elapsed();
        if (iters >= 8 && elapsed.as_millis() >= min_millis) || iters >= 4_000_000 {
            return iters as f64 / elapsed.as_secs_f64();
        }
    }
}

/// [`searches_per_sec_for`] at the canonical ~120 ms sample length.
fn searches_per_sec(unit: &mut CamUnit) -> f64 {
    searches_per_sec_for(unit, 120)
}

/// One [`SearchRateRow`] at `entries`, sampled for `min_millis` per tier
/// with the best of `rounds` kept — the short-sample variant behind the
/// tier-floor smoke test, where wall-clock budget beats precision.
#[must_use]
pub fn measure_search_rate_quick(entries: usize, min_millis: u128, rounds: usize) -> SearchRateRow {
    let best = |fidelity| {
        let mut unit = unit_of(entries, fidelity);
        (0..rounds.max(1))
            .map(|_| searches_per_sec_for(&mut unit, min_millis))
            .fold(0.0f64, f64::max)
    };
    SearchRateRow {
        entries,
        turbo_sps: best(FidelityMode::Turbo),
        fast_sps: best(FidelityMode::Fast),
        accurate_sps: best(FidelityMode::BitAccurate),
    }
}

/// Batched `search_stream` throughput in keys/sec on `unit`.
fn stream_keys_per_sec(unit: &mut CamUnit, keys: &[u64], min_millis: u128) -> f64 {
    black_box(unit.search_stream(black_box(keys)));
    let mut streamed = 0u64;
    let start = Instant::now();
    loop {
        black_box(unit.search_stream(black_box(keys)));
        streamed += keys.len() as u64;
        if start.elapsed().as_millis() >= min_millis {
            return streamed as f64 / start.elapsed().as_secs_f64();
        }
    }
}

/// Measure the tracer's overhead on Turbo `search_stream` batches at
/// `entries`: the percentage throughput loss of an observed unit
/// (tracing every event into a bounded ring) versus an unobserved one.
///
/// Plain and observed samples are interleaved round by round and the
/// best of each side kept, so clock drift and cache noise hit both
/// sides equally; a negative result (pure noise) clamps to 0.
#[cfg(feature = "obs")]
#[must_use]
pub fn measure_turbo_trace_overhead_pct(entries: usize) -> f64 {
    use std::sync::Arc;

    let keys: Vec<u64> = (0..1024u64).map(|i| i * 7 % (entries as u64 * 3)).collect();
    let mut plain = unit_of(entries, FidelityMode::Turbo);
    let sink = Arc::new(dsp_cam_obs::ObsSink::with_trace_capacity(16_384));
    let mut observed = unit_of(entries, FidelityMode::Turbo);
    observed.attach_observer(&sink);
    let mut plain_sps = 0.0f64;
    let mut observed_sps = 0.0f64;
    for _ in 0..5 {
        plain_sps = plain_sps.max(stream_keys_per_sec(&mut plain, &keys, 100));
        observed_sps = observed_sps.max(stream_keys_per_sec(&mut observed, &keys, 100));
    }
    ((plain_sps - observed_sps) / plain_sps * 100.0).max(0.0)
}

/// Measure the scrubber's overhead on Turbo `search_stream` batches at
/// `entries`: the percentage throughput loss of a unit running the
/// default [`ScrubPolicy`] (background walker + sampled oracle
/// cross-check) versus an identical unit with scrubbing disabled.
///
/// Same interleaved best-of-rounds discipline as
/// [`measure_turbo_trace_overhead_pct`], but with more, shorter rounds:
/// the scrub tax is small (single-digit percent), so the estimate must
/// survive scheduler contention spikes that can depress one side for
/// 100ms at a time. Twelve alternating 60ms rounds give each side a
/// dozen chances at a quiet slice of the machine; the best of each side
/// is kept and a negative result (pure noise) clamps to 0.
#[must_use]
pub fn measure_scrub_overhead_pct(entries: usize) -> f64 {
    let keys: Vec<u64> = (0..1024u64).map(|i| i * 7 % (entries as u64 * 3)).collect();
    let mut plain = unit_of(entries, FidelityMode::Turbo);
    let block_size = if entries >= 256 { 256 } else { 128 };
    let config = UnitConfig::builder()
        .data_width(32)
        .block_size(block_size)
        .num_blocks(entries / block_size)
        .bus_width(512)
        .fidelity(FidelityMode::Turbo)
        .scrub(ScrubPolicy::default())
        .build()
        .expect("bench geometry is valid");
    let mut scrubbed = CamUnit::new(config).expect("constructible");
    let words: Vec<u64> = (0..entries as u64).map(|i| i * 3).collect();
    scrubbed.update(&words).expect("fits");
    let mut plain_sps = 0.0f64;
    let mut scrubbed_sps = 0.0f64;
    for _ in 0..12 {
        plain_sps = plain_sps.max(stream_keys_per_sec(&mut plain, &keys, 60));
        scrubbed_sps = scrubbed_sps.max(stream_keys_per_sec(&mut scrubbed, &keys, 60));
    }
    ((plain_sps - scrubbed_sps) / plain_sps * 100.0).max(0.0)
}

/// Batched `search_stream` throughput of the persistent worker pool
/// versus per-batch scoped threads, at one unit size.
#[derive(Debug, Clone, Copy)]
pub struct PoolVsScopedRow {
    /// Unit capacity in cells (four replicated groups share them).
    pub entries: usize,
    /// Keys/sec with [`DispatchMode::Pool`] (persistent workers).
    pub pool_sps: f64,
    /// Keys/sec with [`DispatchMode::ScopedThreads`] (spawn per batch).
    pub scoped_sps: f64,
}

impl PoolVsScopedRow {
    /// Pool throughput over scoped-thread throughput.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.pool_sps / self.scoped_sps
    }
}

/// A sharded unit at `entries` total cells: Turbo tier, four replicated
/// groups on four workers, filled to its per-group capacity.
fn sharded_unit_of(entries: usize, dispatch: DispatchMode) -> CamUnit {
    // At least four blocks, so four groups always fit.
    let block_size = (entries / 4).min(256);
    let config = UnitConfig::builder()
        .data_width(32)
        .block_size(block_size)
        .num_blocks(entries / block_size)
        .bus_width(512)
        .fidelity(FidelityMode::Turbo)
        .workers(4)
        .dispatch(dispatch)
        .build()
        .expect("bench geometry is valid");
    let mut unit = CamUnit::new(config).expect("constructible");
    unit.configure_groups(4)
        .expect("entries/block_size blocks split 4 ways");
    let words: Vec<u64> = (0..(entries / 4) as u64).map(|i| i * 3).collect();
    unit.update(&words).expect("fits the replicated capacity");
    unit
}

/// Compare the persistent worker-pool dispatcher against per-batch
/// scoped threads on `search_stream` batches of 1024 keys at `entries`.
///
/// Pool and scoped samples are interleaved round by round (each sampled
/// for `min_millis`, best of `rounds` kept) so clock drift and cache
/// noise hit both sides equally — the same discipline as
/// [`measure_turbo_trace_overhead_pct`].
#[must_use]
pub fn measure_pool_vs_scoped(entries: usize, min_millis: u128, rounds: usize) -> PoolVsScopedRow {
    let keys: Vec<u64> = (0..1024u64).map(|i| i * 7 % (entries as u64 * 3)).collect();
    let mut pooled = sharded_unit_of(entries, DispatchMode::Pool);
    let mut scoped = sharded_unit_of(entries, DispatchMode::ScopedThreads);
    let mut pool_sps = 0.0f64;
    let mut scoped_sps = 0.0f64;
    for _ in 0..rounds.max(1) {
        pool_sps = pool_sps.max(stream_keys_per_sec(&mut pooled, &keys, min_millis));
        scoped_sps = scoped_sps.max(stream_keys_per_sec(&mut scoped, &keys, min_millis));
    }
    PoolVsScopedRow {
        entries,
        pool_sps,
        scoped_sps,
    }
}

/// Turbo `search_stream` throughput at one large capacity.
#[derive(Debug, Clone, Copy)]
pub struct LargeScaleRow {
    /// Unit capacity in entries.
    pub entries: usize,
    /// Host keys/sec through Turbo `search_stream` (default batch width).
    pub stream_kps: f64,
}

impl LargeScaleRow {
    /// Stream keys/sec per stored entry — the scale-invariant a
    /// memory-bound plane walk must hold as capacity grows.
    #[must_use]
    pub fn per_entry(&self) -> f64 {
        self.stream_kps / self.entries as f64
    }
}

/// Batched versus scalar-width Turbo stream throughput at one size.
#[derive(Debug, Clone, Copy)]
pub struct BatchVsScalarRow {
    /// Unit capacity in entries.
    pub entries: usize,
    /// Keys per kernel pass on the batched side.
    pub batch_width: usize,
    /// Keys/sec with the key-parallel kernel at `batch_width`.
    pub batched_kps: f64,
    /// Keys/sec with the kernel degenerated to one key per pass.
    pub scalar_kps: f64,
}

impl BatchVsScalarRow {
    /// Batched throughput over scalar-width throughput.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.batched_kps / self.scalar_kps
    }
}

/// A single-group Turbo unit of `entries` cells at `batch_width` keys
/// per kernel pass, filled with the canonical `i * 3` fixture.
fn turbo_stream_unit(entries: usize, batch_width: usize) -> CamUnit {
    let config = UnitConfig::builder()
        .data_width(32)
        .block_size(256)
        .num_blocks(entries / 256)
        .bus_width(512)
        .fidelity(FidelityMode::Turbo)
        .batch_width(batch_width)
        .build()
        .expect("bench geometry is valid");
    let mut unit = CamUnit::new(config).expect("constructible");
    let words: Vec<u64> = (0..entries as u64).map(|i| i * 3).collect();
    unit.update(&words).expect("fits");
    unit
}

/// The deterministic mixed hit/miss key stream used by the large-scale
/// and batch-vs-scalar measurements (hits wherever `i * 7` lands on a
/// stored multiple of three).
fn stream_keys(entries: usize) -> Vec<u64> {
    (0..1024u64).map(|i| i * 7 % (entries as u64 * 3)).collect()
}

/// Turbo `search_stream` throughput at each of `sizes` entries, sampled
/// for `min_millis` with the best of `rounds` kept per size.
#[must_use]
pub fn measure_large_scale(sizes: &[usize], min_millis: u128, rounds: usize) -> Vec<LargeScaleRow> {
    sizes
        .iter()
        .map(|&entries| {
            let mut unit = turbo_stream_unit(entries, 32);
            let keys = stream_keys(entries);
            let stream_kps = (0..rounds.max(1))
                .map(|_| stream_keys_per_sec(&mut unit, &keys, min_millis))
                .fold(0.0f64, f64::max);
            LargeScaleRow {
                entries,
                stream_kps,
            }
        })
        .collect()
}

/// Race the key-parallel kernel (`batch_width` keys per plane pass)
/// against the same unit degenerated to one key per pass, on Turbo
/// `search_stream` at `entries`. Rounds are interleaved so clock drift
/// and cache noise hit both sides equally.
#[must_use]
pub fn measure_batch_vs_scalar(
    entries: usize,
    batch_width: usize,
    min_millis: u128,
    rounds: usize,
) -> BatchVsScalarRow {
    let keys = stream_keys(entries);
    let mut batched = turbo_stream_unit(entries, batch_width);
    let mut scalar = turbo_stream_unit(entries, 1);
    let mut batched_kps = 0.0f64;
    let mut scalar_kps = 0.0f64;
    for _ in 0..rounds.max(1) {
        batched_kps = batched_kps.max(stream_keys_per_sec(&mut batched, &keys, min_millis));
        scalar_kps = scalar_kps.max(stream_keys_per_sec(&mut scalar, &keys, min_millis));
    }
    BatchVsScalarRow {
        entries,
        batch_width,
        batched_kps,
        scalar_kps,
    }
}

/// Measure all three tiers at each of `sizes` entries.
#[must_use]
pub fn measure_search_rates(sizes: &[usize]) -> Vec<SearchRateRow> {
    sizes
        .iter()
        .map(|&entries| {
            let accurate_sps = searches_per_sec(&mut unit_of(entries, FidelityMode::BitAccurate));
            let fast_sps = searches_per_sec(&mut unit_of(entries, FidelityMode::Fast));
            let turbo_sps = searches_per_sec(&mut unit_of(entries, FidelityMode::Turbo));
            SearchRateRow {
                entries,
                turbo_sps,
                fast_sps,
                accurate_sps,
            }
        })
        .collect()
}

/// The optional `BENCH_search.json` sections beyond the canonical
/// tier-rate rows — each measurement records whichever it produced.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchSections<'a> {
    /// Tracer overhead on Turbo `search_stream` at 8192 entries (obs
    /// builds only).
    pub trace_overhead_pct: Option<f64>,
    /// Default-policy scrub overhead on Turbo `search_stream`.
    pub scrub_overhead_pct: Option<f64>,
    /// Persistent-pool versus scoped-thread dispatch race.
    pub pool: Option<&'a PoolVsScopedRow>,
    /// Large-capacity (64k/256k/1M) Turbo stream scale-up.
    pub large: Option<&'a [LargeScaleRow]>,
    /// Key-parallel kernel versus its one-key degenerate.
    pub batch: Option<&'a BatchVsScalarRow>,
    /// Update-queue mixed-stream rows (buffered versus inline).
    pub update_queue: Option<&'a [UpdateLatencyRow]>,
    /// Sharding-cluster sequential-sum throughput race.
    pub cluster: Option<&'a [ClusterRow]>,
    /// Live-migration zero-dropped-query observables.
    pub cluster_migration: Option<&'a MigrationInvariantRow>,
    /// Cluster failover drills (crash rebuild, stall recovery).
    pub failover: Option<&'a [FailoverRow]>,
}

/// Serialise `rows` plus whichever optional `sections` were measured to
/// `BENCH_search.json` at the repository root, recording which bench
/// produced them. Returns the written path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_search_json(
    source: &str,
    rows: &[SearchRateRow],
    sections: &BenchSections<'_>,
) -> io::Result<PathBuf> {
    let BenchSections {
        trace_overhead_pct,
        scrub_overhead_pct,
        pool,
        large,
        batch,
        update_queue,
        cluster,
        cluster_migration,
        failover,
    } = *sections;
    let path = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_search.json"
    ));
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!("  \"source\": \"{source}\",\n"));
    body.push_str(
        "  \"metric\": \"host searches/sec, Turbo (bit-sliced) vs Fast (match-index) vs \
         BitAccurate (DSP48E2 simulation)\",\n",
    );
    if let Some(pct) = trace_overhead_pct {
        body.push_str(&format!("  \"turbo_trace_overhead_pct\": {pct:.2},\n"));
    }
    if let Some(pct) = scrub_overhead_pct {
        body.push_str(&format!("  \"scrub_overhead_pct\": {pct:.2},\n"));
    }
    if let Some(row) = pool {
        body.push_str(&format!(
            "  \"pool_vs_scoped\": {{\"entries\": {}, \"pool_searches_per_sec\": {:.1}, \
             \"scoped_searches_per_sec\": {:.1}, \"pool_over_scoped\": {:.2}}},\n",
            row.entries,
            row.pool_sps,
            row.scoped_sps,
            row.ratio(),
        ));
    }
    if let Some(row) = batch {
        body.push_str(&format!(
            "  \"batch_kernel_vs_scalar\": {{\"entries\": {}, \"batch_width\": {}, \
             \"batched_keys_per_sec\": {:.1}, \"scalar_keys_per_sec\": {:.1}, \
             \"batched_over_scalar\": {:.2}}},\n",
            row.entries,
            row.batch_width,
            row.batched_kps,
            row.scalar_kps,
            row.ratio(),
        ));
    }
    if let Some(uq_rows) = update_queue {
        body.push_str("  \"update_queue_rows\": [\n");
        for (i, row) in uq_rows.iter().enumerate() {
            body.push_str(&format!(
                "    {{\"entries\": {}, \"mix\": \"{}\", \
                 \"buffered_update_p50_ns\": {:.0}, \"buffered_update_p99_ns\": {:.0}, \
                 \"inline_update_p50_ns\": {:.0}, \"inline_update_p99_ns\": {:.0}, \
                 \"update_p99_buffered_over_inline\": {:.3}, \
                 \"buffered_search_keys_per_sec\": {:.1}, \
                 \"inline_search_keys_per_sec\": {:.1}, \
                 \"search_buffered_over_inline\": {:.2}, \
                 \"buffered_drained_ops\": {}}}{}\n",
                row.entries,
                row.mix.label(),
                row.buffered_update_p50_ns,
                row.buffered_update_p99_ns,
                row.inline_update_p50_ns,
                row.inline_update_p99_ns,
                row.p99_ratio(),
                row.buffered_search_kps,
                row.inline_search_kps,
                row.search_ratio(),
                row.buffered_drained_ops,
                if i + 1 == uq_rows.len() { "" } else { "," },
            ));
        }
        body.push_str("  ],\n");
    }
    if let Some(cluster_rows) = cluster {
        let baseline_sps = cluster_rows
            .iter()
            .find(|r| r.shards == 1)
            .map(ClusterRow::ops_per_sec);
        body.push_str("  \"cluster_rows\": [\n");
        for (i, row) in cluster_rows.iter().enumerate() {
            let speedup = baseline_sps.map_or(1.0, |base| row.ops_per_sec() / base);
            body.push_str(&format!(
                "    {{\"shards\": {}, \"entries_per_shard\": {}, \"app_ops\": {}, \
                 \"sequential_sum_ops_per_sec\": {:.1}, \"speedup_over_single\": {:.2}, \
                 \"floor_speedup_over_single\": {}}}{}\n",
                row.shards,
                row.entries_per_shard,
                row.app_ops,
                row.ops_per_sec(),
                speedup,
                if row.shards == 1 {
                    "null".to_string()
                } else {
                    format!("{CLUSTER_SPEEDUP_FLOOR:.1}")
                },
                if i + 1 == cluster_rows.len() { "" } else { "," },
            ));
        }
        body.push_str("  ],\n");
    }
    if let Some(m) = cluster_migration {
        body.push_str(&format!(
            "  \"cluster_migration\": {{\"issued\": {}, \"completions\": {}, \
             \"dropped\": {}, \"frozen_answers\": {}, \"stall_cycles\": {}, \
             \"ticks\": {}, \"invariant\": \"dropped == 0\"}},\n",
            m.issued, m.completions, m.dropped, m.frozen_answers, m.stall_cycles, m.ticks,
        ));
    }
    if let Some(failover_rows) = failover {
        body.push_str("  \"failover_rows\": [\n");
        for (i, row) in failover_rows.iter().enumerate() {
            body.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"shards\": {}, \"app_ops\": {}, \
                 \"presented\": {}, \"availability\": {:.4}, \"degraded_answers\": {}, \
                 \"shed_writes\": {}, \"write_retries\": {}, \"infra_retries\": {}, \
                 \"failures_detected\": {}, \"rebuilds_completed\": {}, \
                 \"max_recovery_ticks\": {}, \"dropped\": {}, \"ticks\": {}, \
                 \"floor_availability\": {FAILOVER_AVAILABILITY_FLOOR}, \
                 \"ceiling_recovery_ticks\": {FAILOVER_RECOVERY_TICKS_CEILING}}}{}\n",
                row.scenario,
                row.shards,
                row.app_ops,
                row.presented,
                row.availability,
                row.degraded_answers,
                row.shed_writes,
                row.write_retries,
                row.infra_retries,
                row.failures_detected,
                row.rebuilds_completed,
                row.max_recovery_ticks,
                row.dropped,
                row.ticks,
                if i + 1 == failover_rows.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        body.push_str("  ],\n");
    }
    if let Some(large_rows) = large {
        body.push_str("  \"large_rows\": [\n");
        for (i, row) in large_rows.iter().enumerate() {
            body.push_str(&format!(
                "    {{\"entries\": {}, \"turbo_stream_keys_per_sec\": {:.1}, \
                 \"searches_per_sec_per_entry\": {:.4}}}{}\n",
                row.entries,
                row.stream_kps,
                row.per_entry(),
                if i + 1 == large_rows.len() { "" } else { "," },
            ));
        }
        body.push_str("  ],\n");
    }
    body.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"entries\": {}, \"turbo_searches_per_sec\": {:.1}, \
             \"fast_searches_per_sec\": {:.1}, \
             \"bit_accurate_searches_per_sec\": {:.1}, \"speedup\": {:.2}, \
             \"turbo_speedup_over_fast\": {:.2}}}{}\n",
            row.entries,
            row.turbo_sps,
            row.fast_sps,
            row.accurate_sps,
            row.speedup(),
            row.turbo_speedup(),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Measure, write the artefact, print a summary, and enforce the
/// tier speedup floors at 8192 entries. The persistent worker pool is
/// also raced against per-batch scoped threads on sharded
/// `search_stream` batches at 8192 entries, recorded in the artefact,
/// and floored at parity. The default-policy scrubber's overhead on
/// Turbo `search_stream` at 8192 entries is measured, recorded in the
/// artefact, and bounded at 5%. With the `obs` feature on, the tracer
/// overhead on Turbo `search_stream` at 8192 entries is measured too,
/// recorded in the artefact, and bounded at 3%.
///
/// The key-parallel kernel is raced against its one-key degenerate at
/// 8192 entries (floored at [`BATCH_VS_SCALAR_FLOOR`]) and Turbo
/// `search_stream` is measured across [`LARGE_BENCH_SIZES`] (floored
/// per entry by [`LARGE_SCALE_PER_ENTRY_FLOORS`]); both are recorded in
/// the artefact. The CAM-fronted update queue is measured buffered
/// versus inline on the 90:9:1 and 50:45:5 mixed streams at 8192 and
/// 64k entries, recorded as `update_queue_rows`, and floored at
/// [`UPDATE_P99_RATIO_CEILING`] / [`SEARCH_UNDER_WRITES_FLOOR`] on the
/// write-heavy 8192-entry row. The cluster failover drills (crash
/// rebuild, stall recovery) replay at 15k ops, are recorded as
/// `failover_rows`, and are floored by [`assert_failover_floors`].
///
/// # Panics
///
/// Panics if the fast tier is below 10× the bit-accurate tier, or the
/// turbo tier below 5× the fast tier, at 8192 entries — each tier's
/// reason to exist — or if the worker pool is slower than spawning
/// scoped threads per batch, or if default-policy scrubbing costs > 5%
/// of Turbo stream throughput, or (with `obs`) if tracing costs ≥ 3%
/// of Turbo stream throughput, or if the batch kernel, large-scale or
/// update-queue floors regress, or if the 4-shard cluster race falls
/// under [`CLUSTER_SPEEDUP_FLOOR`], or if the live-migration replay
/// drops a query, or if a failover drill breaks its availability floor
/// or recovery-tick ceiling (see [`assert_failover_floors`]).
pub fn emit_bench_search_json(source: &str) {
    let rows = measure_search_rates(&BENCH_SIZES);
    println!();
    println!("Search-tier rates (host):");
    for row in &rows {
        println!(
            "  {:>5} entries: turbo {:>12.0} searches/s, fast {:>12.0} searches/s, \
             bit-accurate {:>10.0} searches/s (fast {:>6.1}x, turbo {:>5.1}x fast)",
            row.entries,
            row.turbo_sps,
            row.fast_sps,
            row.accurate_sps,
            row.speedup(),
            row.turbo_speedup(),
        );
    }
    #[cfg(feature = "obs")]
    let trace_overhead = {
        let pct = measure_turbo_trace_overhead_pct(8192);
        println!("  tracer overhead on turbo search_stream at 8192 entries: {pct:.2}%");
        Some(pct)
    };
    #[cfg(not(feature = "obs"))]
    let trace_overhead = None;
    let scrub_overhead = measure_scrub_overhead_pct(8192);
    println!(
        "  scrub overhead on turbo search_stream at 8192 entries \
         (default ScrubPolicy): {scrub_overhead:.2}%"
    );
    let pool = measure_pool_vs_scoped(8192, 100, 5);
    println!(
        "  pool vs scoped threads on sharded search_stream at 8192 entries: \
         pool {:>12.0} keys/s, scoped {:>12.0} keys/s ({:.2}x)",
        pool.pool_sps,
        pool.scoped_sps,
        pool.ratio(),
    );
    let batch = measure_batch_vs_scalar(8192, 32, 100, 5);
    println!(
        "  batch kernel (W=32) vs scalar-width on turbo search_stream at 8192 entries: \
         batched {:>12.0} keys/s, scalar {:>12.0} keys/s ({:.2}x)",
        batch.batched_kps,
        batch.scalar_kps,
        batch.ratio(),
    );
    let large = measure_large_scale(&LARGE_BENCH_SIZES, 150, 3);
    println!("Large-capacity turbo search_stream:");
    for row in &large {
        println!(
            "  {:>8} entries: {:>12.0} keys/s ({:.4} keys/s per entry)",
            row.entries,
            row.stream_kps,
            row.per_entry(),
        );
    }
    let update_queue = measure_update_latency_rows(&[8192, 65_536], 120, 8);
    println!("Update queue (buffered vs inline, mixed search:update:delete):");
    for row in &update_queue {
        println!(
            "  {:>6} entries @ {:>7}: update p99 {:>8.0} ns buffered vs {:>8.0} ns inline \
             ({:.3}x), search {:>11.0} keys/s vs {:>11.0} keys/s ({:.2}x), \
             {} ops drained off-window",
            row.entries,
            row.mix.label(),
            row.buffered_update_p99_ns,
            row.inline_update_p99_ns,
            row.p99_ratio(),
            row.buffered_search_kps,
            row.inline_search_kps,
            row.search_ratio(),
            row.buffered_drained_ops,
        );
    }
    // The acceptance-criterion race runs the full 1M-op trace: long
    // timing windows keep the ratio out of scheduler-noise territory.
    let cluster_rows = crate::cluster::measure_cluster_rows(8192, 1_000_000, &[1, 4]);
    println!("Sharding cluster (write-heavy 50:45:5, sequential-sum CPU time):");
    for row in &cluster_rows {
        println!(
            "  {} shard(s) x {:>4} entries: {:>10.0} ops/s",
            row.shards,
            row.entries_per_shard,
            row.ops_per_sec(),
        );
    }
    let migration = crate::cluster::measure_migration_invariant(15_000);
    println!(
        "  live migration: {} issued, {} completed, {} dropped, {} frozen reads, \
         {} stall cycles",
        migration.issued,
        migration.completions,
        migration.dropped,
        migration.frozen_answers,
        migration.stall_cycles,
    );
    let failover_rows = crate::failover::measure_failover_rows(15_000);
    println!("Cluster failover drills (write-heavy 50:45:5, deterministic lockstep):");
    for row in &failover_rows {
        println!(
            "  {:>14}: availability {:.4}, {} degraded answers, recovery {} ticks, \
             {} retries, {} shed, {} dropped",
            row.scenario,
            row.availability,
            row.degraded_answers,
            row.max_recovery_ticks,
            row.write_retries,
            row.shed_writes,
            row.dropped,
        );
    }
    match write_bench_search_json(
        source,
        &rows,
        &BenchSections {
            trace_overhead_pct: trace_overhead,
            scrub_overhead_pct: Some(scrub_overhead),
            pool: Some(&pool),
            large: Some(&large),
            batch: Some(&batch),
            update_queue: Some(&update_queue),
            cluster: Some(&cluster_rows),
            cluster_migration: Some(&migration),
            failover: Some(&failover_rows),
        },
    ) {
        Ok(path) => println!("(json: {})", path.display()),
        Err(err) => println!("(failed to write BENCH_search.json: {err})"),
    }
    for row in &failover_rows {
        assert_failover_floors(row);
    }
    let cluster_speedup = cluster_rows[1].ops_per_sec() / cluster_rows[0].ops_per_sec();
    assert!(
        cluster_speedup >= CLUSTER_SPEEDUP_FLOOR,
        "4-shard sequential-sum throughput must be >= {CLUSTER_SPEEDUP_FLOOR}x the \
         single-unit baseline at 8192 total entries, got {cluster_speedup:.2}x"
    );
    assert_eq!(
        migration.dropped, 0,
        "live migration must not drop a query (issued {}, completed {})",
        migration.issued, migration.completions
    );
    assert!(
        batch.ratio() >= BATCH_VS_SCALAR_FLOOR,
        "key-parallel kernel must be >= {BATCH_VS_SCALAR_FLOOR}x its one-key degenerate \
         at 8192 entries / W=32, got {:.2}x",
        batch.ratio()
    );
    for row in &large {
        let (_, floor) = LARGE_SCALE_PER_ENTRY_FLOORS
            .iter()
            .find(|(entries, _)| *entries == row.entries)
            .expect("every large size has a floor");
        assert!(
            row.per_entry() >= *floor,
            "turbo stream throughput per entry at {} entries must be >= {floor}, got {:.4}",
            row.entries,
            row.per_entry()
        );
    }
    let write_heavy_8k = update_queue
        .iter()
        .find(|r| r.entries == 8192 && r.mix.deletes == UpdateMix::WRITE_HEAVY.deletes)
        .expect("8192 / 50:45:5 is a canonical update-queue row");
    assert!(
        write_heavy_8k.p99_ratio() <= UPDATE_P99_RATIO_CEILING,
        "buffered update p99 must be <= {UPDATE_P99_RATIO_CEILING}x inline under 50:45:5 \
         at 8192 entries, got {:.3}x",
        write_heavy_8k.p99_ratio()
    );
    assert!(
        write_heavy_8k.search_ratio() >= SEARCH_UNDER_WRITES_FLOOR,
        "buffered search throughput must be >= {SEARCH_UNDER_WRITES_FLOOR}x inline under \
         50:45:5 at 8192 entries, got {:.2}x",
        write_heavy_8k.search_ratio()
    );
    assert!(
        scrub_overhead <= 5.0,
        "default-policy scrubbing must cost <= 5% of turbo search_stream \
         throughput at 8192 entries, got {scrub_overhead:.2}%"
    );
    assert!(
        pool.ratio() >= 1.0,
        "the persistent worker pool must not lose to per-batch scoped threads \
         at 8192 entries, got {:.2}x",
        pool.ratio()
    );
    if let Some(pct) = trace_overhead {
        assert!(
            pct < 3.0,
            "tracer overhead must stay under 3% on turbo search_stream, got {pct:.2}%"
        );
    }
    let at_8k = rows
        .iter()
        .find(|r| r.entries == 8192)
        .expect("8192 is a canonical size");
    assert!(
        at_8k.speedup() >= 10.0,
        "fast tier must be >= 10x bit-accurate at 8192 entries, got {:.1}x",
        at_8k.speedup()
    );
    assert!(
        at_8k.turbo_speedup() >= 5.0,
        "turbo tier must be >= 5x fast at 8192 entries, got {:.1}x",
        at_8k.turbo_speedup()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tiers_agree_on_results_in_the_bench_geometry() {
        let mut accurate = unit_of(512, FidelityMode::BitAccurate);
        let mut fast = unit_of(512, FidelityMode::Fast);
        let mut turbo = unit_of(512, FidelityMode::Turbo);
        for key in [0u64, 3, 5, 1533, 1_000_003] {
            let want = accurate.search(key);
            assert_eq!(want, fast.search(key), "fast, key {key}");
            assert_eq!(want, turbo.search(key), "turbo, key {key}");
        }
    }

    /// Tier-1 floor regression: the reasons the shadow tiers exist —
    /// fast ≥ 10× bit-accurate and turbo ≥ 5× fast — hold even on a
    /// quick short-sample measurement at a reduced entry count. (The
    /// canonical long-sample measurement at 8192 entries lives in
    /// `emit_bench_search_json`; this is its always-on smoke test.)
    #[test]
    fn tier_speedup_floors_hold_at_reduced_size() {
        let row = measure_search_rate_quick(2048, 40, 3);
        assert!(
            row.speedup() >= 10.0,
            "fast tier must be >= 10x bit-accurate at 2048 entries, got {:.1}x",
            row.speedup()
        );
        assert!(
            row.turbo_speedup() >= 5.0,
            "turbo tier must be >= 5x fast at 2048 entries, got {:.1}x",
            row.turbo_speedup()
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn tracer_overhead_is_bounded_at_reduced_size() {
        // Quick-sample variant of the canonical 8192-entry measurement:
        // the <3% bound is only enforced by the release-mode bench, but
        // tracing must never be catastrophically slow even in debug.
        let pct = measure_turbo_trace_overhead_pct(512);
        assert!(
            pct < 15.0,
            "tracer overhead exploded on turbo search_stream: {pct:.2}%"
        );
    }

    #[test]
    fn scrub_overhead_is_bounded_at_reduced_size() {
        // Quick-sample variant of the canonical 8192-entry measurement:
        // the <= 5% bound is only enforced by the release-mode bench,
        // but default-policy scrubbing must never be catastrophically
        // slow even in debug.
        let pct = measure_scrub_overhead_pct(512);
        assert!(
            pct < 20.0,
            "scrub overhead exploded on turbo search_stream: {pct:.2}%"
        );
    }

    #[test]
    fn pool_and_scoped_streams_agree_in_the_bench_geometry() {
        let mut pooled = sharded_unit_of(512, DispatchMode::Pool);
        let mut scoped = sharded_unit_of(512, DispatchMode::ScopedThreads);
        let keys: Vec<u64> = (0..64u64).map(|i| i * 7 % 1536).collect();
        assert_eq!(
            pooled.search_stream(&keys),
            scoped.search_stream(&keys),
            "dispatch mode must not change stream results"
        );
    }

    #[test]
    fn pool_vs_scoped_measurement_is_sane() {
        // The >= 1.0x floor is release-only (emit_bench_search_json);
        // in debug the comparison just has to produce finite, positive
        // rates on both sides.
        let row = measure_pool_vs_scoped(512, 10, 1);
        assert!(row.pool_sps > 0.0 && row.pool_sps.is_finite());
        assert!(row.scoped_sps > 0.0 && row.scoped_sps.is_finite());
        assert!(row.ratio() > 0.0);
    }

    #[test]
    fn json_rows_roundtrip_shape() {
        let rows = [SearchRateRow {
            entries: 512,
            turbo_sps: 2.0e7,
            fast_sps: 2.0e6,
            accurate_sps: 1.0e5,
        }];
        assert!((rows[0].speedup() - 20.0).abs() < 1e-9);
        assert!((rows[0].turbo_speedup() - 10.0).abs() < 1e-9);
        let large = LargeScaleRow {
            entries: 65_536,
            stream_kps: 655_360.0,
        };
        assert!((large.per_entry() - 10.0).abs() < 1e-9);
        let batch = BatchVsScalarRow {
            entries: 8192,
            batch_width: 32,
            batched_kps: 3.0e6,
            scalar_kps: 1.0e6,
        };
        assert!((batch.ratio() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn batched_and_scalar_width_streams_agree() {
        // The perf race is release-only; in any build the two kernel
        // widths must return identical stream results.
        let keys = stream_keys(512);
        let mut batched = turbo_stream_unit(512, 32);
        let mut scalar = turbo_stream_unit(512, 1);
        assert_eq!(
            batched.search_stream(&keys[..128]),
            scalar.search_stream(&keys[..128]),
            "batch width must not change stream results"
        );
    }

    /// Release-mode floor regression for the key-parallel kernel and the
    /// large-capacity scale-up, on the fixed-seed key stream. Run by
    /// `scripts/ci.sh` as
    /// `cargo test --release -p dsp-cam-bench -- --ignored`; too slow
    /// (and too noisy) for the default debug test pass, hence ignored.
    #[test]
    #[ignore = "release-mode perf smoke, run explicitly by scripts/ci.sh"]
    fn large_capacity_smoke() {
        let batch = measure_batch_vs_scalar(8192, 32, 60, 3);
        assert!(
            batch.ratio() >= BATCH_VS_SCALAR_FLOOR,
            "key-parallel kernel must be >= {BATCH_VS_SCALAR_FLOOR}x scalar width \
             at 8192 entries / W=32, got {:.2}x",
            batch.ratio()
        );
        let entries = 65_536;
        let rows = measure_large_scale(&[entries], 60, 3);
        let (_, floor) = LARGE_SCALE_PER_ENTRY_FLOORS
            .iter()
            .find(|(e, _)| *e == entries)
            .expect("64k has a floor");
        assert!(
            rows[0].per_entry() >= *floor,
            "turbo stream throughput per entry at {entries} entries must be >= {floor}, \
             got {:.4}",
            rows[0].per_entry()
        );
    }
}
