//! Criterion microbenchmarks of the cycle-accurate streaming pipeline and
//! the dense SIMD block — host-side simulation rates for the two
//! extension datapaths.

use criterion::{criterion_group, criterion_main, Criterion};
use dsp_cam_core::dense::DenseCamBlock;
use dsp_cam_core::prelude::*;
use dsp_cam_sim::Clocked;
use std::hint::black_box;

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_cam");
    group.bench_function("search_issue_tick", |b| {
        let config = UnitConfig::builder()
            .data_width(32)
            .block_size(128)
            .num_blocks(4)
            .build()
            .expect("valid");
        let mut cam = StreamingCam::new(config).expect("constructible");
        cam.issue(Op::Update(vec![42])).expect("slot");
        cam.drain();
        cam.drain_retired();
        let mut key = 0u64;
        b.iter(|| {
            key = (key + 1) % 100;
            cam.issue(Op::Search(black_box(key))).expect("slot");
            cam.tick();
            black_box(cam.drain_retired())
        });
    });
    group.bench_function("idle_tick", |b| {
        let config = UnitConfig::builder()
            .data_width(32)
            .block_size(128)
            .num_blocks(4)
            .build()
            .expect("valid");
        let mut cam = StreamingCam::new(config).expect("constructible");
        b.iter(|| {
            cam.tick();
            black_box(cam.cycle())
        });
    });
    group.finish();
}

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_simd_block");
    group.bench_function("search_512_entries", |b| {
        let mut cam = DenseCamBlock::new(512);
        for v in 0..512u64 {
            cam.insert(v % 4096).expect("fits");
        }
        let mut key = 0u64;
        b.iter(|| {
            key = (key + 7) % 4096;
            black_box(cam.search(black_box(key)).expect("in width"))
        });
    });
    group.bench_function("insert_clear_cycle", |b| {
        let mut cam = DenseCamBlock::new(64);
        b.iter(|| {
            cam.reset();
            for v in 0..64u64 {
                cam.insert(v).expect("fits");
            }
            black_box(cam.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_streaming, bench_dense);
criterion_main!(benches);
