//! Reproduces **Table VII** (CAM unit configuration and resource
//! utilisation, 512 … 9728 cells at 48-bit data).
//!
//! LUT counts and frequency come from the calibrated models; DSP counts
//! are structural (one slice per cell); the SLR column explains *why* the
//! frequency falls (the floorplan model), which the paper states in prose.

use dsp_cam_bench::banner;
use dsp_cam_core::prelude::*;
use fpga_model::report::{fmt_f, fmt_pct, Table};
use fpga_model::{CamResourceModel, Device, FrequencyModel, SlrModel};

fn main() {
    banner(
        "Table VII — CAM Unit Configuration and Resource Utilization",
        "Block size 256, input bus 512 bits, 48-bit data (the paper's \
         scalability setup); SLR occupancy shown to explain the derate.",
    );

    let sizes = [512u64, 1024, 2048, 4096, 6144, 8192, 9728];
    let resources = CamResourceModel::u250();
    let freq = FrequencyModel::u250_unit();
    let device = Device::u250();
    let slr = SlrModel::for_device(&device);

    let mut table = Table::new(
        "Table VII (reproduced)",
        &[
            "CAM size",
            "LUT",
            "LUT util",
            "DSP",
            "DSP util",
            "SLRs",
            "Freq (MHz)",
        ],
    );

    for &cells in &sizes {
        // Validate that the configuration is actually constructible.
        let config = UnitConfig::builder()
            .data_width(48)
            .block_size(256)
            .num_blocks((cells / 256) as usize)
            .bus_width(512)
            .build()
            .expect("Table VII configuration is valid");
        assert_eq!(config.total_cells() as u64, cells);
        resources.check_fit(cells).expect("fits the U250");

        let usage = resources.unit_resources(cells, false);
        let util = usage.utilisation(&device);
        table.row(&[
            format!("{cells} x 48 bits"),
            usage.lut.to_string(),
            fmt_pct(util.lut),
            usage.dsp.to_string(),
            fmt_pct(util.dsp),
            slr.slrs_needed(cells).to_string(),
            fmt_f(freq.frequency_mhz(cells), 0),
        ]);
    }
    print!("{table}");
    if let Ok(p) = table.save_csv(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/paper_tables"),
        "table7_unit_resources",
    ) {
        println!("(csv: {})", p.display());
    }

    println!();
    println!(
        "Paper reference: LUT 2491/5072/10167/20330/29385/38191/45244; \
         freq 300/300/300/265/252/240/235 MHz; max config = 9728 cells \
         ({} of the paper's 11508 usable DSPs, {:.2}% of all 12288).",
        9728,
        9728.0 / 12288.0 * 100.0
    );
    println!(
        "Maximum constructible unit on the U250 (block 256): {} cells.",
        resources.max_unit_cells(256)
    );
}
