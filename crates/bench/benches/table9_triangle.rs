//! Reproduces **Table IX** (triangle-counting execution time, CAM-based
//! vs merge baseline) over the ten synthetic dataset stand-ins, plus the
//! Fig. 5/6 functional validation.
//!
//! Absolute milliseconds differ from the paper (synthetic graphs, scaled
//! sizes); the reproduced *shape* is: the CAM wins everywhere, by an
//! outsized factor on hub-skewed graphs (as20000102, soc-Slashdot) and a
//! modest one on road networks, with a single-digit average.

use dsp_cam_bench::banner;
use dsp_cam_core::prelude::FidelityMode;
use fpga_model::report::{fmt_f, Table};
use tc_accel::perf::{mean_speedup, table_ix};
use tc_accel::CamTriangleCounter;

fn main() {
    banner(
        "Table IX — Execution time of traditional and CAM-based TC",
        "Synthetic stand-ins at per-dataset scale (see DESIGN.md); both \
         engines share the DDR model and 300 MHz clock; counts are exact \
         and cross-checked between engines.",
    );

    let rows = table_ix();
    let mut table = Table::new(
        "Table IX (reproduced)",
        &[
            "Dataset",
            "Scale",
            "Triangles (stand-in)",
            "Ours (ms)",
            "Baseline (ms)",
            "Speedup",
            "Paper speedup",
        ],
    );
    for r in &rows {
        table.row(&[
            r.dataset.to_string(),
            format!("1/{}", r.scale),
            r.triangles.to_string(),
            fmt_f(r.ours_ms, 3),
            fmt_f(r.baseline_ms, 3),
            format!("{:.2}x", r.speedup),
            format!("{:.2}x", r.paper_speedup),
        ]);
    }
    print!("{table}");
    if let Ok(p) = table.save_csv(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/paper_tables"),
        "table9_triangle",
    ) {
        println!("(csv: {})", p.display());
    }

    let avg = mean_speedup(&rows);
    let paper_avg: f64 = rows.iter().map(|r| r.paper_speedup).sum::<f64>() / rows.len() as f64;
    println!();
    println!("Average speedup: {avg:.2}x (paper: {paper_avg:.2}x on the real traces).");

    // Shape assertions — the properties the reproduction claims.
    assert!(
        rows.iter().all(|r| r.speedup > 1.0),
        "the CAM engine must win on every dataset"
    );
    let road_max = rows
        .iter()
        .filter(|r| r.dataset.starts_with("roadNet"))
        .map(|r| r.speedup)
        .fold(0.0f64, f64::max);
    let skewed_min = rows
        .iter()
        .filter(|r| r.dataset == "as20000102" || r.dataset == "soc-Slashdot0811")
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);
    assert!(
        skewed_min > road_max,
        "hub-skewed graphs ({skewed_min:.2}x) must beat road networks ({road_max:.2}x)"
    );
    println!("Shape checks passed: CAM wins everywhere; skew ({skewed_min:.2}x) > road ({road_max:.2}x).");

    // Cross-validate the analytical model against the simulated hardware
    // on a small graph — through the turbo bit-sliced tier, which makes
    // the full-unit drive cheap while computing exactly what the
    // DSP-level simulation would.
    let edges = dsp_cam_graph::generate::erdos_renyi(48, 160, 11);
    let g = dsp_cam_graph::builder::GraphBuilder::from_edges(edges).build_undirected();
    let counter = CamTriangleCounter::new();
    let analytical = counter.run(&g);
    let hw = counter
        .run_on_hardware_model_with(&g, FidelityMode::Turbo)
        .expect("default geometry is valid");
    assert_eq!(
        analytical.triangles, hw.triangles,
        "hardware-model triangle count must match the analytical engine"
    );
    assert_eq!(analytical.cycles, hw.cycles, "cycle model must agree");
    println!(
        "Hardware cross-check (turbo tier): {} triangles, {} cycles — matches the analytical engine.",
        hw.triangles, hw.cycles
    );
}
