//! Reproduces **Table III** (configurable parameters for the CAM unit) by
//! walking the supported configuration space: every knob is exercised
//! through the builder, and the validation rules are demonstrated on
//! representative illegal settings.

use dsp_cam_bench::banner;
use dsp_cam_core::prelude::*;
use fpga_model::report::Table;

fn main() {
    banner(
        "Table III — Configurable Parameters for CAM Unit",
        "Each parameter exercised end-to-end through the builder; the \
         validation column shows a rejected setting for each rule.",
    );

    let mut table = Table::new(
        "Table III (reproduced): parameter inventory",
        &[
            "Granularity",
            "Parameter",
            "Supported values",
            "Rejected example",
        ],
    );

    // Cell type.
    for kind in CamKind::ALL {
        let cam = CamUnit::new(
            UnitConfig::builder()
                .kind(kind)
                .num_blocks(1)
                .block_size(16)
                .build()
                .expect("every kind builds"),
        )
        .expect("constructible");
        assert_eq!(cam.config().block.cell.kind, kind);
    }
    table.row(&[
        "CAM Cell".into(),
        "Cell type".into(),
        "Binary / Ternary / Range-matching".into(),
        "(none — all three build)".into(),
    ]);

    // Storage data width.
    for width in [1u32, 8, 24, 32, 48] {
        UnitConfig::builder()
            .data_width(width)
            .bus_width(512)
            .build()
            .expect("widths 1..=48 build");
    }
    let err = UnitConfig::builder().data_width(49).build().unwrap_err();
    table.row(&[
        "CAM Cell".into(),
        "Storage data width".into(),
        "1..=48 bits".into(),
        format!("49 bits -> {err}"),
    ]);

    // Block size.
    for size in [2usize, 32, 64, 128, 256, 512] {
        UnitConfig::builder()
            .block_size(size)
            .build()
            .expect("power-of-two sizes build");
    }
    let err = UnitConfig::builder().block_size(100).build().unwrap_err();
    table.row(&[
        "CAM Block".into(),
        "Block size".into(),
        "powers of two >= 2".into(),
        format!("100 -> {err}"),
    ]);

    // Block bus width.
    UnitConfig::builder()
        .block_bus_width(256)
        .build()
        .expect("narrower block bus builds");
    let err = UnitConfig::builder()
        .block_bus_width(48)
        .build()
        .unwrap_err();
    table.row(&[
        "CAM Block".into(),
        "Block bus width".into(),
        "powers of two >= data width".into(),
        format!("48 bits -> {err}"),
    ]);

    // Result encoding.
    for enc in [
        Encoding::Priority,
        Encoding::OneHot,
        Encoding::AddressList,
        Encoding::MatchCount,
    ] {
        let mut cam = CamUnit::new(
            UnitConfig::builder()
                .encoding(enc)
                .num_blocks(1)
                .block_size(8)
                .build()
                .expect("all encodings build"),
        )
        .expect("constructible");
        cam.update(&[7]).expect("fits");
        assert!(cam.search(7).is_match(), "{enc:?}");
    }
    table.row(&[
        "CAM Block".into(),
        "Result encoding".into(),
        "Priority / OneHot / AddressList / MatchCount".into(),
        "(none — all four answer searches)".into(),
    ]);

    // Unit size.
    for blocks in [1usize, 4, 16, 38] {
        UnitConfig::builder()
            .num_blocks(blocks)
            .block_size(256)
            .build()
            .expect("any positive block count builds");
    }
    let err = UnitConfig::builder().num_blocks(0).build().unwrap_err();
    table.row(&[
        "CAM Unit".into(),
        "Unit size".into(),
        ">= 1 block (9728 cells at block 256 = the paper's max)".into(),
        format!("0 blocks -> {err}"),
    ]);

    // Unit bus width.
    for bus in [64u32, 128, 256, 512, 1024] {
        UnitConfig::builder()
            .bus_width(bus)
            .data_width(32)
            .build()
            .expect("power-of-two buses build");
    }
    let err = UnitConfig::builder()
        .bus_width(16)
        .data_width(32)
        .build()
        .unwrap_err();
    table.row(&[
        "CAM Unit".into(),
        "Unit bus width".into(),
        "powers of two >= data width (512 = DDR port)".into(),
        format!("16 bits -> {err}"),
    ]);

    // Runtime group count (Section III-C, configured by the user kernel).
    let mut cam = CamUnit::new(
        UnitConfig::builder()
            .num_blocks(16)
            .block_size(128)
            .build()
            .expect("case-study unit"),
    )
    .expect("constructible");
    for m in [1usize, 2, 4, 8, 16] {
        cam.configure_groups(m).expect("divisors of 16 accepted");
    }
    let err = cam.configure_groups(3).unwrap_err();
    table.row(&[
        "CAM Unit (runtime)".into(),
        "Group count M".into(),
        "divisors of the block count".into(),
        format!("3 of 16 -> {err}"),
    ]);

    print!("{table}");
    println!("\nAll Table III parameters exercised and validated.");
}
