//! Criterion microbenchmarks of the set-intersection kernels — the
//! algorithmic heart of the case study — across balanced and skewed list
//! shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsp_cam_graph::intersect;
use std::hint::black_box;

fn sorted(n: usize, stride: u32, offset: u32) -> Vec<u32> {
    (0..n as u32).map(|i| i * stride + offset).collect()
}

fn bench_balanced(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_balanced");
    for n in [64usize, 512, 4096] {
        let a = sorted(n, 2, 0);
        let b = sorted(n, 3, 1);
        group.bench_with_input(BenchmarkId::new("merge", n), &n, |bench, _| {
            bench.iter(|| black_box(intersect::merge(black_box(&a), black_box(&b))));
        });
        group.bench_with_input(BenchmarkId::new("hash", n), &n, |bench, _| {
            bench.iter(|| black_box(intersect::hash(black_box(&a), black_box(&b))));
        });
        group.bench_with_input(BenchmarkId::new("galloping", n), &n, |bench, _| {
            bench.iter(|| black_box(intersect::galloping(black_box(&a), black_box(&b))));
        });
    }
    group.finish();
}

fn bench_skewed(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_skewed");
    // The CAM's favourite shape: one huge list, one tiny probe set.
    let large = sorted(100_000, 1, 0);
    let small = sorted(16, 4_321, 7);
    group.bench_function("merge_100k_vs_16", |b| {
        b.iter(|| black_box(intersect::merge(black_box(&small), black_box(&large))));
    });
    group.bench_function("galloping_100k_vs_16", |b| {
        b.iter(|| black_box(intersect::galloping(black_box(&small), black_box(&large))));
    });
    group.bench_function("cam_probe_100k_vs_16", |b| {
        b.iter(|| black_box(intersect::cam_probe(black_box(&large), black_box(&small))));
    });
    group.finish();
}

criterion_group!(benches, bench_balanced, bench_skewed);
criterion_main!(benches);
