//! Reproduces **Table V** (CAM cell evaluation) and the Fig. 2 / Table II
//! cell-level behaviour: identical cost across all three CAM kinds,
//! 1-cycle update, 2-cycle search, one DSP slice and nothing else.
//!
//! Latencies are *measured* on the simulated DSP48E2 (cycle counts of the
//! slice model), not quoted.

use dsp_cam_bench::banner;
use dsp_cam_core::prelude::*;
use fpga_model::report::Table;

fn measure_cell(kind: CamKind) -> (u64, u64) {
    let config = CellConfig {
        kind,
        data_width: 48,
        ternary_mask: 0,
    };
    let mut cell = CamCell::new(config).expect("valid cell config");
    let c0 = cell.cycles();
    cell.write(0xDEAD_BEEF).expect("write fits");
    let update = cell.cycles() - c0;
    let c1 = cell.cycles();
    assert!(cell.search(0xDEAD_BEEF));
    let search = cell.cycles() - c1;
    (update, search)
}

fn main() {
    banner(
        "Table V — CAM Cell Evaluation",
        "Measured on the simulated DSP48E2 slice; Table II mask semantics \
         give identical cost for BCAM/TCAM/RMCAM.",
    );

    let mut table = Table::new(
        "Table V: CAM cell (per kind; paper reports one column — all kinds equal)",
        &["Metric", "BCAM", "TCAM", "RMCAM", "Paper"],
    );
    let mut updates = Vec::new();
    let mut searches = Vec::new();
    for kind in CamKind::ALL {
        let (u, s) = measure_cell(kind);
        updates.push(u.to_string());
        searches.push(s.to_string());
    }
    table.row(&[
        "Storage capacity".into(),
        "1 entry <=48b".into(),
        "1 entry <=48b".into(),
        "1 entry <=48b".into(),
        "1 entry <=48b".into(),
    ]);
    table.row(&[
        "Update latency (cycles)".into(),
        updates[0].clone(),
        updates[1].clone(),
        updates[2].clone(),
        "1".into(),
    ]);
    table.row(&[
        "Search latency (cycles)".into(),
        searches[0].clone(),
        searches[1].clone(),
        searches[2].clone(),
        "2".into(),
    ]);
    table.row(&[
        "Resources".into(),
        "1 DSP, 0 LUT, 0 BRAM".into(),
        "1 DSP, 0 LUT, 0 BRAM".into(),
        "1 DSP, 0 LUT, 0 BRAM".into(),
        "1 DSP, 0 LUT, 0 BRAM".into(),
    ]);
    print!("{table}");

    // Table II behaviour check printed alongside, since it defines the
    // kind configuration the cell rows above exercise.
    let mut t2 = Table::new(
        "Table II: MASK semantics (behavioural check)",
        &["Type", "MASK value", "Observed behaviour"],
    );
    let mut bcam = CamCell::new(CellConfig::binary(16)).expect("valid");
    bcam.write(0x1234).expect("fits");
    assert!(bcam.search(0x1234) && !bcam.search(0x1235));
    t2.row(&[
        "BCAM".into(),
        "all zero".into(),
        "all bits compared (exact match verified)".into(),
    ]);
    let mut tcam = CamCell::new(CellConfig::ternary(16, 0x00FF)).expect("valid");
    tcam.write(0x1200).expect("fits");
    assert!(tcam.search(0x12AB) && !tcam.search(0x13AB));
    t2.row(&[
        "TCAM".into(),
        "ignored bits = 1".into(),
        "MASK=1 bits are don't care (wildcard verified)".into(),
    ]);
    let mut rmcam = CamCell::new(CellConfig::range_matching(16)).expect("valid");
    rmcam
        .write_range(RangeSpec::new(0x100, 8).expect("aligned"))
        .expect("fits");
    assert!(rmcam.search(0x1FF) && !rmcam.search(0x200));
    t2.row(&[
        "RMCAM".into(),
        "relevant bits = 0".into(),
        "power-of-two range match verified".into(),
    ]);
    print!("{t2}");
    println!("\nAll Table V / Table II checks passed.");
}
