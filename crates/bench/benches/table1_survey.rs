//! Reproduces **Table I** (survey of recent CAM designs on FPGA) and
//! **Table IV** (U250 resource capacity).
//!
//! The nine published rows are literature data; the "Ours" row is computed
//! from the calibrated resource/timing models at the paper's maximum
//! configuration (9728 × 48 bits on the U250).

use dsp_cam_baselines::survey_fidelity;
use dsp_cam_bench::{banner, opt_cell};
use fpga_model::report::{fmt_f, Table};
use fpga_model::survey::{our_design_row, published_survey};
use fpga_model::Device;

fn main() {
    banner(
        "Table I — A survey of recent CAM designs on FPGA",
        "Published rows quoted from the literature; 'Ours' computed from \
         the calibrated models at the maximum 9728 x 48-bit configuration.",
    );

    let mut table = Table::new(
        "Table I (reproduced)",
        &[
            "Design",
            "Category",
            "Platform",
            "Max CAM size",
            "Freq (MHz)",
            "LUT",
            "BRAM",
            "DSP",
            "Update (cy)",
            "Search (cy)",
            "Multi-query",
        ],
    );

    let mut rows = published_survey();
    rows.push(our_design_row());
    for e in &rows {
        table.row(&[
            e.name.to_string(),
            e.category.to_string(),
            e.platform.to_string(),
            format!("{} x {} bits", e.entries, e.width),
            fmt_f(e.frequency_mhz, 0),
            e.lut.to_string(),
            e.bram.to_string(),
            e.dsp.to_string(),
            opt_cell(e.update_latency),
            opt_cell(e.search_latency),
            if e.multi_query { "yes" } else { "no" }.to_string(),
        ]);
    }
    print!("{table}");
    if let Ok(p) = table.save_csv(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/paper_tables"),
        "table1_survey",
    ) {
        println!("(csv: {})", p.display());
    }

    let ours = our_design_row();
    println!();
    println!(
        "Ours @ max: {} DSP = {:.2}% of the chip, {} LUT, {} BRAM (bus FIFOs), {} MHz.",
        ours.dsp,
        ours.dsp as f64 / 12_288.0 * 100.0,
        ours.lut,
        ours.bram,
        ours.frequency_mhz
    );

    let d = Device::u250();
    let mut t4 = Table::new(
        "Table IV: Resource capacity of AMD Alveo U250",
        &["Resource", "LUTs", "Registers", "BRAM", "URAM", "DSP"],
    );
    t4.row(&[
        "Quantity".into(),
        format!("{}K", d.luts / 1000),
        format!("{}K", d.registers / 1000),
        d.bram36.to_string(),
        d.uram.to_string(),
        d.dsp.to_string(),
    ]);
    print!("{t4}");

    // Baseline-model fidelity: how close our functional re-implementations
    // land to the rows they reproduce (claimed metrics only; scoping notes
    // in `dsp_cam_baselines::fidelity`).
    let mut tf = Table::new(
        "Baseline-model fidelity at the survey geometries",
        &["Design", "Metric", "Published", "Modelled", "Ratio"],
    );
    for row in survey_fidelity() {
        tf.row(&[
            row.design.to_string(),
            row.metric.to_string(),
            fmt_f(row.published, 0),
            fmt_f(row.modelled, 0),
            format!("{:.2}x", row.ratio()),
        ]);
    }
    println!();
    print!("{tf}");
}
