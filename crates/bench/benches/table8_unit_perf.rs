//! Reproduces **Table VIII** (CAM unit performance for 32-bit data at
//! sizes 128 … 8192).
//!
//! Latencies come from the structural pipeline model and are cross-checked
//! by driving the fully simulated unit (every DSP tick) at each size;
//! throughput = initiation-interval-1 streaming at the Table VIII
//! frequency calibration (updates move 16 × 32-bit words per beat).

use dsp_cam_bench::banner;
use dsp_cam_core::prelude::*;
use dsp_cam_sim::Throughput;
use fpga_model::report::{fmt_f, Table};
use fpga_model::FrequencyModel;

/// Drive a real simulated unit and verify its functional behaviour plus
/// the issue accounting that underpins the II=1 throughput claim.
fn validate_unit(cells: u64) -> UnitConfig {
    let config = UnitConfig::builder()
        .data_width(32)
        .block_size(if cells >= 256 { 256 } else { 128 })
        .num_blocks((cells / if cells >= 256 { 256 } else { 128 }) as usize)
        .bus_width(512)
        .build()
        .expect("Table VIII configuration is valid");
    let mut unit = CamUnit::new(config).expect("constructible");
    // Fill a slice of the unit and stream a few searches.
    let words: Vec<u64> = (0..64).map(|i| i * 3 + 1).collect();
    unit.update(&words).expect("fits");
    let issues0 = unit.issue_cycles();
    for key in [1u64, 4, 7, 1000] {
        let hit = unit.search(key);
        assert_eq!(hit.is_match(), key % 3 == 1 && key <= 190, "key {key}");
    }
    assert_eq!(unit.issue_cycles() - issues0, 4, "II = 1 search issue");
    config
}

fn main() {
    banner(
        "Table VIII — CAM Performance for 32-bit data with different sizes",
        "Latency from the structural pipeline (validated against the full \
         DSP-level simulation); throughput = II-1 streaming at the \
         Table VIII frequency calibration.",
    );

    let sizes = [128u64, 512, 2048, 4096, 8192];
    let freq_model = FrequencyModel::u250_unit_32b();

    let mut rows: Vec<Vec<String>> = vec![
        vec!["Update Latency (cycle)".into()],
        vec!["Search Latency (cycle)".into()],
        vec!["Update Throughput (Mop/s)".into()],
        vec!["Search Throughput (Mop/s)".into()],
    ];

    for &cells in &sizes {
        let config = validate_unit(cells);
        let freq = freq_model.frequency_mhz(cells);
        let update_tp = Throughput {
            operations: 16_000,
            cycles: 1_000,
            frequency_mhz: freq,
        };
        let search_tp = Throughput {
            operations: 1_000,
            cycles: 1_000,
            frequency_mhz: freq,
        };
        rows[0].push(config.update_latency().to_string());
        rows[1].push(config.search_latency().to_string());
        rows[2].push(fmt_f(update_tp.mops(), 0));
        rows[3].push(fmt_f(search_tp.mops(), 0));
    }

    let mut table = Table::new(
        "Table VIII (reproduced)",
        &["Metric", "128", "512", "2048", "4096", "8192"],
    );
    for row in rows {
        table.row(&row);
    }
    print!("{table}");
    if let Ok(p) = table.save_csv(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/paper_tables"),
        "table8_unit_perf",
    ) {
        println!("(csv: {})", p.display());
    }

    println!();
    println!(
        "Paper reference: update 6 cycles everywhere; search 7,7,8*,8,8; \
         update 4800,4800,4800,4064,3840; search 300,300,300,254,240."
    );
    println!(
        "* The paper's prose says the +1 cycle applies 'larger than 2K' \
         but its Table VIII reports 8 cycles AT 2048; this reproduction \
         follows the table data (buffer from 2048 cells up) — see \
         EXPERIMENTS.md."
    );

    // Host-side simulation rates for the same geometries: the fast
    // match-index tier vs the full DSP-level simulation.
    dsp_cam_bench::search_rates::emit_bench_search_json("table8_unit_perf");
}
