//! Reproduces **Figure 1** (the characteristics of current FPGA-based CAM
//! designs) as a table of the five radar axes, normalised 0–5.
//!
//! Quantitative axes (scalability, performance, frequency) are derived
//! from the Table I columns; the qualitative axes follow Section II's
//! discussion (see `fpga_model::survey::fig1_scores`).

use dsp_cam_bench::banner;
use fpga_model::report::{fmt_f, Table};
use fpga_model::survey::{fig1_scores, our_design_row, published_survey, Category};

fn main() {
    banner(
        "Figure 1 — Characteristics of current FPGA-based CAM designs",
        "Radar axes rendered as a table, 0 (worst) .. 5 (best); one row per \
         design family (category maxima over the Table I survey) plus Ours.",
    );

    let mut table = Table::new(
        "Figure 1 (reproduced): per-family axis scores",
        &[
            "Family",
            "Scalability",
            "Performance",
            "Frequency",
            "Integration",
            "Multi-query",
        ],
    );

    // Aggregate each category at its best (the figure draws family
    // envelopes, not individual designs).
    for category in [
        Category::Lut,
        Category::Bram,
        Category::Hybrid,
        Category::Dsp,
    ] {
        let mut best = [0.0f64; 5];
        for entry in published_survey().iter().filter(|e| e.category == category) {
            let s = fig1_scores(entry);
            for (slot, v) in [
                s.scalability,
                s.performance,
                s.frequency,
                s.integration,
                s.multi_query,
            ]
            .into_iter()
            .enumerate()
            {
                best[slot] = best[slot].max(v);
            }
        }
        table.row(&[
            format!("{category}-based (prior)"),
            fmt_f(best[0], 1),
            fmt_f(best[1], 1),
            fmt_f(best[2], 1),
            fmt_f(best[3], 1),
            fmt_f(best[4], 1),
        ]);
    }

    let ours = fig1_scores(&our_design_row());
    table.row(&[
        "DSP-based (Ours)".into(),
        fmt_f(ours.scalability, 1),
        fmt_f(ours.performance, 1),
        fmt_f(ours.frequency, 1),
        fmt_f(ours.integration, 1),
        fmt_f(ours.multi_query, 1),
    ]);
    print!("{table}");

    println!();
    println!(
        "Expected shape (paper): prior designs each collapse on at least \
         one axis (LUT: scalability; BRAM: performance/frequency; hybrid: \
         performance; prior DSP: search latency and multi-query); Ours \
         holds the outer envelope on integration and multi-query while \
         staying top-band elsewhere."
    );
}
