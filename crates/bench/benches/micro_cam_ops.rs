//! Criterion microbenchmarks of the CAM hierarchy simulation: block and
//! unit update/search rates at several geometries, and the baseline CAM
//! implementations for comparison.

use criterion::{criterion_group, BenchmarkId, Criterion};
use dsp_cam_baselines::{Cam, DspCascadeCam, LutCam, LutramCam};
use dsp_cam_core::prelude::*;
use std::hint::black_box;

fn block_of(size: usize) -> CamBlock {
    let mut block =
        CamBlock::new(BlockConfig::standalone(CellConfig::binary(32), size, 512)).expect("valid");
    let words: Vec<u64> = (0..size as u64).collect();
    for chunk in words.chunks(16) {
        block.update(chunk).expect("fits");
    }
    block
}

fn bench_block_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("cam_block_search");
    for size in [32usize, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut block = block_of(size);
            let mut key = 0u64;
            b.iter(|| {
                key = (key + 7) % size as u64;
                black_box(block.search(black_box(key)))
            });
        });
    }
    group.finish();
}

fn bench_unit_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("cam_unit");
    group.sample_size(20);
    for (blocks, m) in [(4usize, 1usize), (4, 4), (16, 16)] {
        let id = format!("search_{}blk_{}groups", blocks, m);
        group.bench_function(&id, |b| {
            let mut unit = CamUnit::new(
                UnitConfig::builder()
                    .data_width(32)
                    .block_size(128)
                    .num_blocks(blocks)
                    .build()
                    .expect("valid"),
            )
            .expect("constructible");
            unit.configure_groups(m).expect("divides");
            let words: Vec<u64> = (0..unit.capacity() as u64).collect();
            unit.update(&words).expect("fits");
            let keys: Vec<u64> = (0..m as u64).collect();
            b.iter(|| black_box(unit.search_multi(black_box(&keys))));
        });
    }
    group.bench_function("update_beat_16x32b", |b| {
        let mut unit = CamUnit::new(
            UnitConfig::builder()
                .data_width(32)
                .block_size(128)
                .num_blocks(4)
                .build()
                .expect("valid"),
        )
        .expect("constructible");
        let words: Vec<u64> = (0..16).collect();
        b.iter(|| {
            unit.reset();
            unit.update(black_box(&words)).expect("fits");
        });
    });
    group.finish();
}

fn bench_fidelity_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("cam_unit_search_tier");
    group.sample_size(10);
    for (label, fidelity) in [
        ("bit_accurate", FidelityMode::BitAccurate),
        ("fast", FidelityMode::Fast),
        ("turbo", FidelityMode::Turbo),
    ] {
        for entries in [512usize, 2048] {
            let id = format!("{label}_{entries}");
            group.bench_function(&id, |b| {
                let mut unit = CamUnit::new(
                    UnitConfig::builder()
                        .data_width(32)
                        .block_size(256)
                        .num_blocks(entries / 256)
                        .bus_width(512)
                        .fidelity(fidelity)
                        .build()
                        .expect("valid"),
                )
                .expect("constructible");
                let words: Vec<u64> = (0..entries as u64).collect();
                unit.update(&words).expect("fits");
                let mut key = 0u64;
                b.iter(|| {
                    key = (key + 7) % (2 * entries as u64);
                    black_box(unit.search(black_box(key)))
                });
            });
        }
    }
    group.finish();
}

fn bench_baseline_cams(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_cam_search");
    let entries = 1024usize;
    let fill = |cam: &mut dyn Cam| {
        for v in 0..entries as u64 {
            cam.insert(v).expect("fits");
        }
    };
    group.bench_function("lut_register", |b| {
        let mut cam = LutCam::new(entries, 32);
        fill(&mut cam);
        b.iter(|| black_box(cam.search(black_box(777))));
    });
    group.bench_function("lutram_transposed", |b| {
        let mut cam = LutramCam::new(entries, 32);
        fill(&mut cam);
        b.iter(|| black_box(cam.search(black_box(777))));
    });
    group.bench_function("dsp_cascade", |b| {
        let mut cam = DspCascadeCam::new(entries, 32);
        fill(&mut cam);
        b.iter(|| black_box(cam.search(black_box(777))));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_block_search,
    bench_unit_ops,
    bench_fidelity_tiers,
    bench_baseline_cams
);

fn main() {
    benches();
    // Machine-readable per-tier rates, tracked across PRs.
    dsp_cam_bench::search_rates::emit_bench_search_json("micro_cam_ops");
}
