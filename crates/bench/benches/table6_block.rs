//! Reproduces **Table VI** (CAM block evaluation at sizes 32…512).
//!
//! Latencies are measured on the simulated block; throughput follows the
//! paper's convention (update = words/s through the 512-bit bus, search =
//! keys/s, both at initiation interval 1 and the calibrated frequency);
//! LUT/DSP counts come from the calibrated resource model.

use dsp_cam_bench::banner;
use dsp_cam_core::prelude::*;
use dsp_cam_sim::Throughput;
use fpga_model::report::{fmt_f, fmt_pct, Table};
use fpga_model::{CamResourceModel, Device, FrequencyModel};

fn main() {
    banner(
        "Table VI — CAM Block Evaluation with different size",
        "Latencies measured in simulation; resources/frequency from the \
         model calibrated on the paper's implementation points.",
    );

    let sizes = [32usize, 64, 128, 256, 512];
    let resources = CamResourceModel::u250();
    let freq_model = FrequencyModel::u250_block();
    let device = Device::u250();

    let mut rows: Vec<Vec<String>> = vec![
        vec!["Update Latency (cycle)".into()],
        vec!["Search Latency (cycle)".into()],
        vec!["Update Throughput (Mop/s)".into()],
        vec!["Search Throughput (Mop/s)".into()],
        vec!["# of LUTs".into()],
        vec!["LUT Utilization (%)".into()],
        vec!["# of DSP".into()],
        vec!["DSP Utilization (%)".into()],
        vec!["BRAM Utilization".into()],
        vec!["Frequency (MHz)".into()],
    ];

    for &size in &sizes {
        let config = BlockConfig::standalone(CellConfig::binary(32), size, 512);
        let mut block = CamBlock::new(config).expect("valid block config");

        // Measure update latency: one full beat of 16 words.
        let words: Vec<u64> = (0..16.min(size as u64)).collect();
        let c0 = block.cycles();
        block.update(&words).expect("beat fits");
        let update_latency = block.cycles() - c0;

        let c1 = block.cycles();
        assert!(block.search(words[0]).is_match());
        let search_latency = block.cycles() - c1;

        let freq = freq_model.frequency_mhz(size as u64);
        // Pipelined throughput at II=1: updates move 16 words per cycle,
        // searches one key per cycle.
        let update_tp = Throughput {
            operations: 16_000,
            cycles: 1_000,
            frequency_mhz: freq,
        };
        let search_tp = Throughput {
            operations: 1_000,
            cycles: 1_000,
            frequency_mhz: freq,
        };

        let usage = resources.block_resources(size as u64);
        let util = usage.utilisation(&device);

        rows[0].push(update_latency.to_string());
        rows[1].push(search_latency.to_string());
        rows[2].push(fmt_f(update_tp.mops(), 0));
        rows[3].push(fmt_f(search_tp.mops(), 0));
        rows[4].push(usage.lut.to_string());
        rows[5].push(fmt_pct(util.lut));
        rows[6].push(usage.dsp.to_string());
        rows[7].push(fmt_pct(util.dsp));
        rows[8].push(usage.bram36.to_string());
        rows[9].push(fmt_f(freq, 0));
    }

    let mut table = Table::new(
        "Table VI (reproduced): CAM block, sizes 32..512",
        &["Metric", "32", "64", "128", "256", "512"],
    );
    for row in rows {
        table.row(&row);
    }
    print!("{table}");
    if let Ok(p) = table.save_csv(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/paper_tables"),
        "table6_block",
    ) {
        println!("(csv: {})", p.display());
    }

    println!();
    println!(
        "Paper reference rows: update 1 cycle everywhere; search 3,3,3,4,4; \
         update 4800 / search 300 Mop/s; LUTs 694,745,808,1225,1371; 300 MHz."
    );
}
