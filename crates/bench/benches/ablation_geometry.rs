//! Ablation benches for the case-study design choices DESIGN.md calls out
//! (not a paper table — a sensitivity analysis the paper omits):
//!
//! 1. block size (the paper picks 128 for triangle counting),
//! 2. unit capacity (the paper picks 2K to stay in one SLR),
//! 3. adaptive grouping vs fixed single-group operation.
//!
//! Run on two workload extremes: a hub-skewed AS-style graph and a flat
//! road grid.

use dsp_cam_bench::banner;
use dsp_cam_graph::generate;
use fpga_model::report::{fmt_f, Table};
use tc_accel::ablation::{
    graph_of, grouping_policy_cycles, kernel_step_totals, sweep_block_size, sweep_capacity,
    sweep_channels,
};

fn main() {
    banner(
        "Ablation — CAM geometry and grouping policy (beyond the paper)",
        "Sensitivity of the triangle-counting speedup to the case-study \
         design choices, on a skewed and a flat workload.",
    );

    let skewed = graph_of(&generate::star_core(3000, 8, 7));
    let flat = graph_of(&generate::road_grid(55, 55, 0.08, 7));

    // 1. Block size at fixed 2K capacity.
    let mut t = Table::new(
        "Block-size sweep (capacity 2048 cells)",
        &["Block size", "Skewed: speedup", "Flat: speedup"],
    );
    let sk = sweep_block_size(&skewed, &[32, 64, 128, 256, 512], 2048);
    let fl = sweep_block_size(&flat, &[32, 64, 128, 256, 512], 2048);
    for (s, f) in sk.iter().zip(&fl) {
        t.row(&[
            s.block_size.to_string(),
            format!("{:.2}x", s.speedup),
            format!("{:.2}x", f.speedup),
        ]);
    }
    print!("{t}");
    println!(
        "Finding: block size is insensitive under the paper's \
         longer-list-resident policy — the group count works out to \
         capacity/list-length regardless of block granularity, so the \
         paper's choice of 128 is safe rather than load-bearing.\n"
    );

    // 2. Capacity at fixed block size 128.
    let mut t = Table::new(
        "Capacity sweep (block size 128)",
        &["Capacity", "Skewed: speedup", "Flat: speedup"],
    );
    let sk = sweep_capacity(&skewed, 128, &[512, 1024, 2048, 4096]);
    let fl = sweep_capacity(&flat, 128, &[512, 1024, 2048, 4096]);
    for (s, f) in sk.iter().zip(&fl) {
        t.row(&[
            s.capacity.to_string(),
            format!("{:.2}x", s.speedup),
            format!("{:.2}x", f.speedup),
        ]);
    }
    print!("{t}");
    println!(
        "Expected: capacity matters only when hub lists overflow the unit \
         (chunking); flat graphs are insensitive.\n"
    );

    // 3. Grouping policy.
    let mut t = Table::new(
        "Grouping policy (intersection cycles only)",
        &["Workload", "Adaptive M", "Fixed M=1", "Gain"],
    );
    for (name, g) in [("skewed", &skewed), ("flat", &flat)] {
        let (adaptive, fixed) = grouping_policy_cycles(g);
        t.row(&[
            name.to_string(),
            adaptive.to_string(),
            fixed.to_string(),
            format!("{:.2}x", fixed as f64 / adaptive as f64),
        ]);
    }
    print!("{t}");

    // 4. DDR channel count (the U250 has four; the paper uses one).
    let mut t = Table::new(
        "DDR-channel sweep (extension; paper pins both designs to 1)",
        &["Channels", "Skewed: CAM cycles", "Flat: CAM cycles"],
    );
    let sk = sweep_channels(&skewed, &[1, 2, 4]);
    let fl = sweep_channels(&flat, &[1, 2, 4]);
    for (s_pt, f_pt) in sk.iter().zip(&fl) {
        t.row(&[
            s_pt.label.clone(),
            s_pt.cam_cycles.to_string(),
            f_pt.cam_cycles.to_string(),
        ]);
    }
    print!("{t}");
    println!(
        "Finding: channels pay off only where per-edge beats dominate \
         (long lists); road networks are access-latency-bound and gain \
         nothing.\n"
    );

    // 5. Kernel-level explanation.
    let mut t = Table::new(
        "Why: sequential intersection steps per engine",
        &["Workload", "Merge steps", "CAM probe steps", "Ratio"],
    );
    for (name, g) in [("skewed", &skewed), ("flat", &flat)] {
        let (merge, cam) = kernel_step_totals(g);
        t.row(&[
            name.to_string(),
            merge.to_string(),
            cam.to_string(),
            fmt_f(merge as f64 / cam as f64, 1),
        ]);
    }
    print!("{t}");
    println!("\nAblation complete.");
}
