//! Criterion microbenchmarks of the DSP48E2 slice model itself —
//! simulator-throughput numbers (how many slice-cycles per host-second the
//! behavioural model sustains), not FPGA numbers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dsp48::cam_profile::CamDsp;
use dsp48::opmode::{AluMode, OpMode};
use dsp48::slice::{Dsp48e2, DspInputs};
use dsp48::word::P48;
use dsp48::Attributes;
use std::hint::black_box;

fn bench_slice_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsp48_slice");
    group.bench_function("tick_cam_xor", |b| {
        let mut slice = Dsp48e2::new(Attributes::cam_cell());
        let io = DspInputs {
            a: 0x1234_5678,
            b: 0x2_ABCD,
            c: 0xDEAD_BEEF,
            opmode: OpMode::CAM_XOR,
            alumode: AluMode::XOR,
            ..DspInputs::default()
        };
        b.iter(|| black_box(slice.tick(black_box(&io))));
    });
    group.bench_function("tick_arith_add", |b| {
        let mut slice = Dsp48e2::new(Attributes::default());
        let io = DspInputs {
            a: 99,
            b: 1,
            c: 7,
            ..DspInputs::default()
        };
        b.iter(|| black_box(slice.tick(black_box(&io))));
    });
    group.finish();
}

fn bench_cam_cell_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsp48_cam_cell");
    group.bench_function("write", |b| {
        b.iter_batched(
            CamDsp::new,
            |mut cell| {
                cell.write(0xABCDu64);
                black_box(cell)
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("search", |b| {
        let mut cell = CamDsp::new();
        cell.write(P48::new(0xABCD));
        b.iter(|| black_box(cell.search(0xABCDu64)));
    });
    group.finish();
}

criterion_group!(benches, bench_slice_tick, bench_cam_cell_ops);
criterion_main!(benches);
