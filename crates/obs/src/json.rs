//! A minimal JSON tree used by the metrics snapshot round-trip.
//!
//! The workspace's `serde` dependency is an offline API stand-in whose
//! derives are no-ops, so the observability layer renders and parses its
//! JSON by hand — the same approach the bench crate takes for
//! `BENCH_search.json`, packaged here as a small reusable tree so the
//! snapshot schema can be *parsed back* and compared, not just printed.
//!
//! Only the subset the snapshot schema needs is supported: objects,
//! arrays, strings, integers, booleans and `null`. Floats are
//! deliberately rejected — every metric in the registry is integral, and
//! refusing floats keeps round-trips exact.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the registry never emits fractions).
    Int(i128),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object; key order is preserved so renders are deterministic.
    Object(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Render the tree as compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                use fmt::Write as _;
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text into a tree.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed input, floats, or trailing
    /// garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after value"));
        }
        Ok(value)
    }

    /// Object member lookup (`None` for non-objects or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    #[must_use]
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an in-range integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        self.as_int().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object's members, if it is an object.
    #[must_use]
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array's items, if it is an array.
    #[must_use]
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.error("unrecognised keyword"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat_keyword("null").map(|()| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            // Surrogate pairs never appear in metric names;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar (input is &str, so
                    // slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.error("floats are not supported by this schema"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| self.error("integer out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let value = Json::Object(vec![
            ("name".into(), Json::Str("unit/group0/block1".into())),
            (
                "counters".into(),
                Json::Array(vec![Json::Int(0), Json::Int(u64::MAX as i128)]),
            ),
            ("empty".into(), Json::Object(vec![])),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            ("negative".into(), Json::Int(-7)),
        ]);
        let text = value.render();
        assert_eq!(Json::parse(&text).unwrap(), value);
    }

    #[test]
    fn escapes_round_trip() {
        let value = Json::Str("a\"b\\c\nd\te\u{1}f".into());
        assert_eq!(Json::parse(&value.render()).unwrap(), value);
    }

    #[test]
    fn u64_max_survives() {
        let value = Json::Int(u64::MAX as i128);
        let parsed = Json::parse(&value.render()).unwrap();
        assert_eq!(parsed.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("1e3").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("{\"a\"").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let parsed = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(parsed.get("a").and_then(Json::items).unwrap().len(), 2);
        assert_eq!(parsed.get("b"), Some(&Json::Null));
    }
}
