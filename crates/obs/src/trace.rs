//! Cycle-stamped event tracing with bounded memory.
//!
//! Every architectural event carries the issue-cycle counter of the unit
//! that produced it, so a trace lines up with the paper's cycle
//! accounting (update = 1 beat, search = 1 issue slot per group batch).
//! Events land in a fixed-capacity ring: when full, the oldest record is
//! evicted and counted in `dropped` — tracing never grows unbounded and
//! never stalls the datapath.
//!
//! The trace exports two ways: newline-free JSON (one object per
//! record) and a [`Vcd`] waveform via `sim::vcd`, where the *time axis
//! is the event ordinal* (cycle stamps repeat within a batch, but VCD
//! time must not go backwards) and the real cycle stamp rides on a
//! dedicated 64-bit `cycle` signal.

use std::collections::VecDeque;

use dsp_cam_sim::vcd::Vcd;

use crate::json::Json;

/// Which architectural operation an [`Event::Issue`] describes.
///
/// Defined here (not imported from `core`) so the observability crate
/// sits below every instrumented crate in the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Single-key broadcast search.
    Search,
    /// One-key-per-group parallel search.
    SearchMulti,
    /// Batched streaming search (deduped, `M` keys per issue slot).
    SearchStream,
    /// Word-burst update.
    Update,
    /// First-match delete (search-then-invalidate).
    Delete,
    /// Full-unit reset.
    Reset,
    /// Group repartition.
    ConfigureGroups,
    /// Routing-table write.
    RoutingWrite,
}

impl OpKind {
    /// Stable lowercase name used in JSON exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Search => "search",
            OpKind::SearchMulti => "search_multi",
            OpKind::SearchStream => "search_stream",
            OpKind::Update => "update",
            OpKind::Delete => "delete",
            OpKind::Reset => "reset",
            OpKind::ConfigureGroups => "configure_groups",
            OpKind::RoutingWrite => "routing_write",
        }
    }
}

/// Execution tier, mirrored from `core::FidelityMode` without the
/// dependency (the obs crate sits below `core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Cycle-accurate DSP48E2 simulation.
    BitAccurate,
    /// Horizontal match-index shadow.
    Fast,
    /// Transposed bit-sliced shadow.
    Turbo,
}

impl Tier {
    /// Stable lowercase name used in JSON exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tier::BitAccurate => "bit_accurate",
            Tier::Fast => "fast",
            Tier::Turbo => "turbo",
        }
    }

    /// 2-bit encoding for the VCD `tier` signal.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            Tier::BitAccurate => 0,
            Tier::Fast => 1,
            Tier::Turbo => 2,
        }
    }
}

/// One architectural event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// An operation entered a group's issue slot.
    Issue {
        /// The operation kind.
        kind: OpKind,
        /// Logical group the work was routed to.
        group: u32,
        /// Worker shard that executed it (0 when serial).
        worker: u32,
    },
    /// A search key hit at least one valid cell.
    Match {
        /// The (masked) search key.
        key: u64,
        /// Logical group searched.
        group: u32,
        /// Group-local address of the first (priority) match.
        address: u32,
    },
    /// A search key missed every valid cell.
    Miss {
        /// The (masked) search key.
        key: u64,
        /// Logical group searched.
        group: u32,
    },
    /// A word burst was written.
    Update {
        /// Words in the burst.
        words: u32,
        /// Bus beats the burst took.
        beats: u32,
    },
    /// The execution tier changed.
    TierSwitch {
        /// The new tier.
        tier: Tier,
    },
    /// The degradation governor fell back one tier after a sampled
    /// cross-check caught a shadow answer diverging from the DSP oracle
    /// (restores are recorded as plain [`Event::TierSwitch`]es).
    TierDegraded {
        /// The tier that was serving searches when divergence was caught.
        from: Tier,
        /// The tier the unit fell back to.
        to: Tier,
    },
    /// A `search_stream` batch was admitted.
    StreamBatch {
        /// Keys presented (before dedup).
        presented: u32,
        /// Unique keys actually issued.
        unique: u32,
        /// Groups the batch was packed across.
        groups: u32,
    },
}

impl Event {
    /// Stable lowercase name of the event variant.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::Issue { .. } => "issue",
            Event::Match { .. } => "match",
            Event::Miss { .. } => "miss",
            Event::Update { .. } => "update",
            Event::TierSwitch { .. } => "tier_switch",
            Event::StreamBatch { .. } => "stream_batch",
            Event::TierDegraded { .. } => "tier_degraded",
        }
    }

    /// 3-bit encoding for the VCD `event` signal (0 = idle).
    #[must_use]
    pub fn code(&self) -> u64 {
        match self {
            Event::Issue { .. } => 1,
            Event::Match { .. } => 2,
            Event::Miss { .. } => 3,
            Event::Update { .. } => 4,
            Event::TierSwitch { .. } => 5,
            Event::StreamBatch { .. } => 6,
            Event::TierDegraded { .. } => 7,
        }
    }

    fn payload(&self) -> Vec<(String, Json)> {
        let int = |v: u64| Json::Int(i128::from(v));
        match *self {
            Event::Issue {
                kind,
                group,
                worker,
            } => vec![
                ("op".to_owned(), Json::Str(kind.name().to_owned())),
                ("group".to_owned(), int(u64::from(group))),
                ("worker".to_owned(), int(u64::from(worker))),
            ],
            Event::Match {
                key,
                group,
                address,
            } => vec![
                ("key".to_owned(), int(key)),
                ("group".to_owned(), int(u64::from(group))),
                ("address".to_owned(), int(u64::from(address))),
            ],
            Event::Miss { key, group } => vec![
                ("key".to_owned(), int(key)),
                ("group".to_owned(), int(u64::from(group))),
            ],
            Event::Update { words, beats } => vec![
                ("words".to_owned(), int(u64::from(words))),
                ("beats".to_owned(), int(u64::from(beats))),
            ],
            Event::TierSwitch { tier } => {
                vec![("tier".to_owned(), Json::Str(tier.name().to_owned()))]
            }
            Event::TierDegraded { from, to } => vec![
                ("from".to_owned(), Json::Str(from.name().to_owned())),
                ("to".to_owned(), Json::Str(to.name().to_owned())),
            ],
            Event::StreamBatch {
                presented,
                unique,
                groups,
            } => vec![
                ("presented".to_owned(), int(u64::from(presented))),
                ("unique".to_owned(), int(u64::from(unique))),
                ("groups".to_owned(), int(u64::from(groups))),
            ],
        }
    }
}

/// One admitted trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Issue-cycle counter of the producing unit when the event fired.
    pub cycle: u64,
    /// Monotonic admission sequence number (survives ring eviction).
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

impl TraceRecord {
    /// Render the record as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut entries = vec![
            ("seq".to_owned(), Json::Int(i128::from(self.seq))),
            ("cycle".to_owned(), Json::Int(i128::from(self.cycle))),
            (
                "event".to_owned(),
                Json::Str(self.event.kind_name().to_owned()),
            ),
        ];
        entries.extend(self.event.payload());
        Json::Object(entries)
    }
}

/// Fixed-capacity ring of [`TraceRecord`]s with drop-oldest eviction.
#[derive(Debug, Clone)]
pub struct EventTracer {
    ring: VecDeque<TraceRecord>,
    capacity: usize,
    recorded: u64,
    dropped: u64,
}

impl EventTracer {
    /// A tracer retaining at most `capacity` records (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventTracer {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Admit one event, evicting the oldest record if the ring is full.
    pub fn record(&mut self, cycle: u64, event: Event) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceRecord {
            cycle,
            seq: self.recorded,
            event,
        });
        self.recorded += 1;
    }

    /// Records currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no records are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Retention capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events admitted since creation.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Total records evicted to bound memory.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Discard all retained records (admission counters keep running).
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// Render the retained trace as a JSON array of record objects.
    #[must_use]
    pub fn to_json(&self) -> String {
        Json::Array(self.records().map(TraceRecord::to_json).collect()).render()
    }

    /// Build a VCD waveform from the retained trace.
    ///
    /// VCD time must be non-decreasing but batch events share a cycle
    /// stamp, so the time axis is the *record ordinal*; the real stamp
    /// is exported on the 64-bit `cycle` signal. Signals: `event`
    /// (3-bit variant code), `cycle`, `key` (48-bit), `group`, `worker`,
    /// `tier` (2-bit).
    #[must_use]
    pub fn to_vcd(&self, module: &str) -> Vcd {
        let mut vcd = Vcd::new(module);
        let sig_event = vcd.add_signal("event", 3);
        let sig_cycle = vcd.add_signal("cycle", 64);
        let sig_key = vcd.add_signal("key", 48);
        let sig_group = vcd.add_signal("group", 16);
        let sig_worker = vcd.add_signal("worker", 8);
        let sig_tier = vcd.add_signal("tier", 2);
        for (t, record) in self.records().enumerate() {
            let t = t as u64;
            vcd.sample(t, sig_event, record.event.code());
            vcd.sample(t, sig_cycle, record.cycle);
            match record.event {
                Event::Issue { group, worker, .. } => {
                    vcd.sample(t, sig_group, u64::from(group));
                    vcd.sample(t, sig_worker, u64::from(worker));
                }
                Event::Match { key, group, .. } | Event::Miss { key, group } => {
                    vcd.sample(t, sig_key, key);
                    vcd.sample(t, sig_group, u64::from(group));
                }
                Event::TierSwitch { tier } | Event::TierDegraded { to: tier, .. } => {
                    vcd.sample(t, sig_tier, tier.code());
                }
                Event::Update { .. } | Event::StreamBatch { .. } => {}
            }
        }
        vcd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut tracer = EventTracer::new(3);
        for cycle in 0..5u64 {
            tracer.record(cycle, Event::TierSwitch { tier: Tier::Fast });
        }
        assert_eq!(tracer.len(), 3);
        assert_eq!(tracer.recorded(), 5);
        assert_eq!(tracer.dropped(), 2);
        let cycles: Vec<u64> = tracer.records().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        let seqs: Vec<u64> = tracer.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "seq numbers survive eviction");
    }

    #[test]
    fn trace_json_is_parseable_and_complete() {
        let mut tracer = EventTracer::new(16);
        tracer.record(
            1,
            Event::Issue {
                kind: OpKind::SearchStream,
                group: 2,
                worker: 1,
            },
        );
        tracer.record(
            1,
            Event::Match {
                key: 0xBEEF,
                group: 2,
                address: 7,
            },
        );
        tracer.record(2, Event::Miss { key: 3, group: 0 });
        tracer.record(3, Event::Update { words: 4, beats: 1 });
        tracer.record(
            4,
            Event::StreamBatch {
                presented: 10,
                unique: 8,
                groups: 4,
            },
        );
        let parsed = Json::parse(&tracer.to_json()).unwrap();
        let items = parsed.items().unwrap();
        assert_eq!(items.len(), 5);
        assert_eq!(items[0].get("event").and_then(Json::as_str), Some("issue"));
        assert_eq!(
            items[0].get("op").and_then(Json::as_str),
            Some("search_stream")
        );
        assert_eq!(items[1].get("key").and_then(Json::as_u64), Some(0xBEEF));
        assert_eq!(items[4].get("unique").and_then(Json::as_u64), Some(8));
    }

    #[test]
    fn vcd_bridge_renders_all_event_kinds() {
        let mut tracer = EventTracer::new(16);
        tracer.record(
            0,
            Event::Issue {
                kind: OpKind::Search,
                group: 1,
                worker: 0,
            },
        );
        tracer.record(
            0,
            Event::Match {
                key: 42,
                group: 1,
                address: 3,
            },
        );
        tracer.record(5, Event::TierSwitch { tier: Tier::Turbo });
        let rendered = tracer.to_vcd("trace").render();
        assert!(rendered.contains("$var"), "header present");
        assert!(rendered.contains("event"), "event signal declared");
        assert!(rendered.contains("cycle"), "cycle signal declared");
    }

    #[test]
    fn zero_capacity_clamped() {
        let mut tracer = EventTracer::new(0);
        tracer.record(0, Event::TierSwitch { tier: Tier::Fast });
        assert_eq!(tracer.len(), 1);
    }
}
