//! The hierarchical metrics registry: named counters, gauges and
//! log2-bucket latency histograms grouped under slash-separated scope
//! paths mirroring the hardware hierarchy (`unit` → `unit/group{g}` →
//! `unit/group{g}/block{b}` → `.../cell{c}`).
//!
//! Everything is integral and deterministic: scopes and metric names are
//! `BTreeMap`-ordered, so two registries holding the same values render
//! byte-identical JSON. [`MetricsSnapshot`] round-trips through
//! [`Json`](crate::json::Json) exactly (`parse(render(s)) == s`).

use std::collections::BTreeMap;

use crate::json::{Json, JsonError};

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `2^63`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucket histogram of `u64` samples.
///
/// Bucket 0 counts exact zeros; bucket `k ≥ 1` counts samples whose
/// highest set bit is `k - 1` (i.e. values in `[2^(k-1), 2^k)`), so
/// latencies spanning nanoseconds to seconds fit in 65 fixed buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The count in bucket `index`.
    #[must_use]
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Upper bound on the `q`-quantile sample (`0.0 < q <= 1.0`), from
    /// the log2 buckets: the smallest bucket upper edge at which the
    /// cumulative count reaches `ceil(q * count)`, clamped to the exact
    /// recorded [`Histogram::max`] (and floored at [`Histogram::min`]).
    /// Because buckets are powers of two the answer is within 2× of the
    /// true quantile — the latency-export contract for p50/p99 readouts
    /// of cycle and nanosecond histograms. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Bucket 0 holds exact zeros; bucket k covers
                // [2^(k-1), 2^k), so its inclusive upper edge is
                // 2^k - 1.
                let edge = if index == 0 {
                    0
                } else if index >= 64 {
                    u64::MAX
                } else {
                    (1u64 << index) - 1
                };
                return edge.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// `(bucket_index, count)` for every non-empty bucket.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
    }
}

/// The metrics recorded under one scope path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScopeMetrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl ScopeMetrics {
    /// Add `by` to counter `name` (created at zero on first use).
    pub fn add(&mut self, name: &str, by: u64) {
        // get_mut-then-insert keeps the hot path allocation-free for
        // names that already exist.
        if let Some(slot) = self.counters.get_mut(name) {
            *slot = slot.saturating_add(by);
        } else {
            self.counters.insert(name.to_owned(), by);
        }
    }

    /// Set counter `name` to an absolute value (idempotent publishing).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        if let Some(slot) = self.counters.get_mut(name) {
            *slot = value;
        } else {
            self.counters.insert(name.to_owned(), value);
        }
    }

    /// Set gauge `name`.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        match self.gauges.get_mut(name) {
            Some(slot) => *slot = value,
            None => {
                self.gauges.insert(name.to_owned(), value);
            }
        }
    }

    /// Record one sample into histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                self.histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// Counter value (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Histogram, if any samples were recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, name-ordered.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, name-ordered.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded under this scope.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Hierarchical registry of [`ScopeMetrics`] keyed by slash-separated
/// scope path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    scopes: BTreeMap<String, ScopeMetrics>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The metrics under `path`, created empty on first use.
    pub fn scope_mut(&mut self, path: &str) -> &mut ScopeMetrics {
        if !self.scopes.contains_key(path) {
            self.scopes.insert(path.to_owned(), ScopeMetrics::default());
        }
        self.scopes.get_mut(path).expect("just inserted")
    }

    /// The metrics under `path`, if the scope exists.
    #[must_use]
    pub fn scope(&self, path: &str) -> Option<&ScopeMetrics> {
        self.scopes.get(path)
    }

    /// Counter lookup across the hierarchy (0 for unknown scopes).
    #[must_use]
    pub fn counter(&self, path: &str, name: &str) -> u64 {
        self.scopes.get(path).map_or(0, |s| s.counter(name))
    }

    /// Gauge lookup across the hierarchy.
    #[must_use]
    pub fn gauge(&self, path: &str, name: &str) -> Option<i64> {
        self.scopes.get(path).and_then(|s| s.gauge(name))
    }

    /// Histogram lookup across the hierarchy.
    #[must_use]
    pub fn histogram(&self, path: &str, name: &str) -> Option<&Histogram> {
        self.scopes.get(path).and_then(|s| s.histogram(name))
    }

    /// Sum counter `name` over `prefix` itself and every scope nested
    /// below it (`prefix/...`) — e.g. roll all per-block `searches` up
    /// to their group.
    #[must_use]
    pub fn rollup_counter(&self, prefix: &str, name: &str) -> u64 {
        self.scopes
            .iter()
            .filter(|(path, _)| {
                path.as_str() == prefix
                    || (path.starts_with(prefix)
                        && path.as_bytes().get(prefix.len()) == Some(&b'/'))
            })
            .map(|(_, s)| s.counter(name))
            .sum()
    }

    /// All scopes, path-ordered.
    pub fn scopes(&self) -> impl Iterator<Item = (&str, &ScopeMetrics)> {
        self.scopes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of scopes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scopes.len()
    }

    /// Whether the registry holds no scopes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }
}

/// Schema tag embedded in every snapshot, checked on parse.
pub const SNAPSHOT_SCHEMA: &str = "dsp-cam-obs/v1";

/// A point-in-time copy of a sink's registry plus its tracer's
/// admission counters, renderable to JSON and parseable back exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The registry contents at snapshot time.
    pub registry: MetricsRegistry,
    /// Events admitted into the trace ring since creation.
    pub events_recorded: u64,
    /// Events evicted from the ring to bound memory.
    pub events_dropped: u64,
}

impl MetricsSnapshot {
    /// Counter lookup (0 for unknown scopes).
    #[must_use]
    pub fn counter(&self, path: &str, name: &str) -> u64 {
        self.registry.counter(path, name)
    }

    /// Gauge lookup.
    #[must_use]
    pub fn gauge(&self, path: &str, name: &str) -> Option<i64> {
        self.registry.gauge(path, name)
    }

    /// Histogram lookup.
    #[must_use]
    pub fn histogram(&self, path: &str, name: &str) -> Option<&Histogram> {
        self.registry.histogram(path, name)
    }

    /// Render the snapshot as JSON text.
    ///
    /// Schema (all numbers integral):
    ///
    /// ```json
    /// {
    ///   "schema": "dsp-cam-obs/v1",
    ///   "events": {"recorded": N, "dropped": N},
    ///   "scopes": {
    ///     "unit/group0/block1": {
    ///       "counters": {"searches": N, ...},
    ///       "gauges": {"occupancy": N, ...},
    ///       "histograms": {
    ///         "latency": {"count": N, "sum": N, "min": N, "max": N,
    ///                      "buckets": [[bucket_index, count], ...]}
    ///       }
    ///     }
    ///   }
    /// }
    /// ```
    #[must_use]
    pub fn to_json(&self) -> String {
        let scopes = self
            .registry
            .scopes()
            .map(|(path, metrics)| {
                let mut entry = Vec::new();
                if metrics.counters().next().is_some() {
                    entry.push((
                        "counters".to_owned(),
                        Json::Object(
                            metrics
                                .counters()
                                .map(|(name, v)| (name.to_owned(), Json::Int(i128::from(v))))
                                .collect(),
                        ),
                    ));
                }
                if metrics.gauges().next().is_some() {
                    entry.push((
                        "gauges".to_owned(),
                        Json::Object(
                            metrics
                                .gauges()
                                .map(|(name, v)| (name.to_owned(), Json::Int(i128::from(v))))
                                .collect(),
                        ),
                    ));
                }
                if metrics.histograms().next().is_some() {
                    entry.push((
                        "histograms".to_owned(),
                        Json::Object(
                            metrics
                                .histograms()
                                .map(|(name, h)| (name.to_owned(), histogram_to_json(h)))
                                .collect(),
                        ),
                    ));
                }
                (path.to_owned(), Json::Object(entry))
            })
            .collect();
        Json::Object(vec![
            ("schema".to_owned(), Json::Str(SNAPSHOT_SCHEMA.to_owned())),
            (
                "events".to_owned(),
                Json::Object(vec![
                    (
                        "recorded".to_owned(),
                        Json::Int(i128::from(self.events_recorded)),
                    ),
                    (
                        "dropped".to_owned(),
                        Json::Int(i128::from(self.events_dropped)),
                    ),
                ]),
            ),
            ("scopes".to_owned(), Json::Object(scopes)),
        ])
        .render()
    }

    /// Parse a snapshot back from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON or a schema mismatch.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, JsonError> {
        let bad = |message| JsonError { offset: 0, message };
        let root = Json::parse(text)?;
        if root.get("schema").and_then(Json::as_str) != Some(SNAPSHOT_SCHEMA) {
            return Err(bad("unknown snapshot schema"));
        }
        let events = root.get("events").ok_or_else(|| bad("missing events"))?;
        let events_recorded = events
            .get("recorded")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing events.recorded"))?;
        let events_dropped = events
            .get("dropped")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing events.dropped"))?;
        let mut registry = MetricsRegistry::new();
        let scopes = root
            .get("scopes")
            .and_then(Json::entries)
            .ok_or_else(|| bad("missing scopes"))?;
        for (path, body) in scopes {
            let metrics = registry.scope_mut(path);
            if let Some(counters) = body.get("counters").and_then(Json::entries) {
                for (name, v) in counters {
                    let v = v.as_u64().ok_or_else(|| bad("counter not a u64"))?;
                    metrics.set_counter(name, v);
                }
            }
            if let Some(gauges) = body.get("gauges").and_then(Json::entries) {
                for (name, v) in gauges {
                    let v = v
                        .as_int()
                        .and_then(|i| i64::try_from(i).ok())
                        .ok_or_else(|| bad("gauge not an i64"))?;
                    metrics.set_gauge(name, v);
                }
            }
            if let Some(histograms) = body.get("histograms").and_then(Json::entries) {
                for (name, h) in histograms {
                    let parsed = histogram_from_json(h).ok_or_else(|| bad("bad histogram"))?;
                    metrics.histograms.insert(name.clone(), parsed);
                }
            }
        }
        Ok(MetricsSnapshot {
            registry,
            events_recorded,
            events_dropped,
        })
    }
}

fn histogram_to_json(h: &Histogram) -> Json {
    Json::Object(vec![
        ("count".to_owned(), Json::Int(i128::from(h.count()))),
        ("sum".to_owned(), Json::Int(i128::from(h.sum()))),
        ("min".to_owned(), Json::Int(i128::from(h.min()))),
        ("max".to_owned(), Json::Int(i128::from(h.max()))),
        (
            "buckets".to_owned(),
            Json::Array(
                h.nonzero_buckets()
                    .map(|(i, c)| Json::Array(vec![Json::Int(i as i128), Json::Int(i128::from(c))]))
                    .collect(),
            ),
        ),
    ])
}

fn histogram_from_json(json: &Json) -> Option<Histogram> {
    let mut h = Histogram::new();
    h.count = json.get("count")?.as_u64()?;
    h.sum = json.get("sum")?.as_u64()?;
    h.max = json.get("max")?.as_u64()?;
    let min = json.get("min")?.as_u64()?;
    // The render side reports 0 for an empty histogram; restore the
    // internal u64::MAX sentinel so equality holds.
    h.min = if h.count == 0 { u64::MAX } else { min };
    for pair in json.get("buckets")?.items()? {
        let pair = pair.items()?;
        let index = usize::try_from(pair.first()?.as_u64()?).ok()?;
        if index >= HISTOGRAM_BUCKETS {
            return None;
        }
        h.buckets[index] = pair.get(1)?.as_u64()?;
    }
    Some(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_follow_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(2), 2);
        assert_eq!(h.bucket(10), 1); // 1000 ∈ [512, 1024)
    }

    #[test]
    fn histogram_quantiles_bound_the_true_percentiles() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0, "empty histogram");
        for v in 1..=100u64 {
            h.record(v);
        }
        // The true p50 is 50; the log2 upper bound must cover it without
        // exceeding 2x.
        let p50 = h.quantile(0.50);
        assert!((50..=100).contains(&p50), "p50 bound {p50}");
        // p99 (rank 99 = value 99) bounds into [99, 127] clamped at max.
        let p99 = h.quantile(0.99);
        assert!((99..=100).contains(&p99), "p99 bound {p99}");
        assert_eq!(h.quantile(1.0), 100, "p100 is the exact max");
        // A constant distribution answers exactly at every quantile.
        let mut constant = Histogram::new();
        for _ in 0..10 {
            constant.record(7);
        }
        assert_eq!(constant.quantile(0.5), 7);
        assert_eq!(constant.quantile(0.99), 7);
        // Zeros stay in bucket 0.
        let mut zeros = Histogram::new();
        zeros.record(0);
        zeros.record(0);
        assert_eq!(zeros.quantile(0.99), 0);
    }

    #[test]
    fn registry_hierarchy_and_rollup() {
        let mut reg = MetricsRegistry::new();
        reg.scope_mut("unit").add("searches", 5);
        reg.scope_mut("unit/group0/block0").add("searches", 3);
        reg.scope_mut("unit/group0/block1").add("searches", 2);
        reg.scope_mut("unit/group1/block2").add("searches", 7);
        reg.scope_mut("unitx").add("searches", 100); // not under "unit"
        assert_eq!(reg.counter("unit", "searches"), 5);
        assert_eq!(reg.rollup_counter("unit/group0", "searches"), 5);
        assert_eq!(reg.rollup_counter("unit", "searches"), 17);
        assert_eq!(reg.counter("nope", "searches"), 0);
    }

    #[test]
    fn counters_gauges_histograms_coexist() {
        let mut reg = MetricsRegistry::new();
        let s = reg.scope_mut("unit/group0");
        s.add("hits", 1);
        s.add("hits", 2);
        s.set_counter("hits_abs", 9);
        s.set_gauge("occupancy", -3);
        s.observe("latency", 17);
        s.observe("latency", 4);
        assert_eq!(s.counter("hits"), 3);
        assert_eq!(s.counter("hits_abs"), 9);
        assert_eq!(s.gauge("occupancy"), Some(-3));
        assert_eq!(s.histogram("latency").unwrap().count(), 2);
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let mut registry = MetricsRegistry::new();
        registry.scope_mut("unit").add("issue_cycles", 42);
        registry.scope_mut("unit").set_gauge("groups", 4);
        let s = registry.scope_mut("unit/group0/block0");
        s.add("searches", u64::MAX);
        s.observe("retire_latency", 0);
        s.observe("retire_latency", 5);
        s.observe("retire_latency", 1 << 40);
        let snap = MetricsSnapshot {
            registry,
            events_recorded: 12345,
            events_dropped: 7,
        };
        let text = snap.to_json();
        let parsed = MetricsSnapshot::from_json(&text).unwrap();
        assert_eq!(parsed, snap);
        // And the round-trip is a fixed point of the renderer.
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = MetricsSnapshot {
            registry: MetricsRegistry::new(),
            events_recorded: 0,
            events_dropped: 0,
        };
        assert_eq!(MetricsSnapshot::from_json(&snap.to_json()).unwrap(), snap);
    }

    #[test]
    fn schema_mismatch_rejected() {
        assert!(MetricsSnapshot::from_json("{\"schema\":\"other/v9\"}").is_err());
    }
}
