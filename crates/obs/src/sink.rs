//! The shared observation sink: one mutex around a registry, a tracer
//! and a scope-path intern table, designed so instrumented hot loops pay
//! for at most **one lock acquisition per architectural operation**.
//!
//! Scope paths are interned once at attach/registration time into cheap
//! `Copy` [`ScopeId`]s; hot paths then batch all of an operation's
//! recordings through [`ObsSink::with`], which locks once and hands the
//! closure an [`ObsBatch`] with direct registry/tracer access.

use std::sync::Mutex;

use dsp_cam_sim::vcd::Vcd;

use crate::registry::{MetricsRegistry, MetricsSnapshot, ScopeMetrics};
use crate::trace::{Event, EventTracer, TraceRecord};

/// An interned scope path, cheap to copy into instrumented structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeId(usize);

#[derive(Debug)]
struct Inner {
    registry: MetricsRegistry,
    tracer: EventTracer,
    /// Interned scope paths, indexed by `ScopeId`.
    paths: Vec<String>,
}

/// Thread-safe observation sink shared (via `Arc`) between the
/// instrumented hierarchy and the reporting side.
#[derive(Debug)]
pub struct ObsSink {
    inner: Mutex<Inner>,
}

impl Default for ObsSink {
    fn default() -> Self {
        ObsSink::new()
    }
}

impl ObsSink {
    /// Default trace-ring retention.
    pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

    /// A sink with the default trace capacity.
    #[must_use]
    pub fn new() -> Self {
        ObsSink::with_trace_capacity(Self::DEFAULT_TRACE_CAPACITY)
    }

    /// A sink whose trace ring retains at most `capacity` records.
    #[must_use]
    pub fn with_trace_capacity(capacity: usize) -> Self {
        ObsSink {
            inner: Mutex::new(Inner {
                registry: MetricsRegistry::new(),
                tracer: EventTracer::new(capacity),
                paths: Vec::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicked recorder must not take observability down with it.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Intern `path` (idempotent) and return its id. Call once at
    /// attach time, not per operation.
    pub fn register_scope(&self, path: &str) -> ScopeId {
        let mut inner = self.lock();
        if let Some(i) = inner.paths.iter().position(|p| p == path) {
            return ScopeId(i);
        }
        inner.paths.push(path.to_owned());
        // Materialise the scope so it appears in snapshots even before
        // the first recording.
        inner.registry.scope_mut(path);
        ScopeId(inner.paths.len() - 1)
    }

    /// The path a [`ScopeId`] was registered under.
    #[must_use]
    pub fn scope_path(&self, scope: ScopeId) -> String {
        self.lock().paths[scope.0].clone()
    }

    /// Lock once and run `f` with batched recording access — the hot
    /// path for instrumented operations that emit several events and
    /// metric updates at once.
    pub fn with<R>(&self, f: impl FnOnce(&mut ObsBatch<'_>) -> R) -> R {
        let mut inner = self.lock();
        let mut batch = ObsBatch { inner: &mut inner };
        f(&mut batch)
    }

    /// Convenience single-counter add (locks once).
    pub fn add(&self, scope: ScopeId, name: &str, by: u64) {
        self.with(|o| o.add(scope, name, by));
    }

    /// Convenience single-histogram observation (locks once).
    pub fn observe(&self, scope: ScopeId, name: &str, value: u64) {
        self.with(|o| o.observe(scope, name, value));
    }

    /// Convenience single-gauge set (locks once).
    pub fn set_gauge(&self, scope: ScopeId, name: &str, value: i64) {
        self.with(|o| o.set_gauge(scope, name, value));
    }

    /// Convenience single-event record (locks once).
    pub fn record(&self, cycle: u64, event: Event) {
        self.with(|o| o.record(cycle, event));
    }

    /// Point-in-time copy of the registry plus tracer admission
    /// counters.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            registry: inner.registry.clone(),
            events_recorded: inner.tracer.recorded(),
            events_dropped: inner.tracer.dropped(),
        }
    }

    /// Copy of the retained trace records, oldest first.
    #[must_use]
    pub fn trace_records(&self) -> Vec<TraceRecord> {
        self.lock().tracer.records().copied().collect()
    }

    /// The retained trace as a JSON array (see
    /// [`EventTracer::to_json`](crate::trace::EventTracer::to_json)).
    #[must_use]
    pub fn trace_json(&self) -> String {
        self.lock().tracer.to_json()
    }

    /// The retained trace as a VCD waveform (see
    /// [`EventTracer::to_vcd`](crate::trace::EventTracer::to_vcd)).
    #[must_use]
    pub fn to_vcd(&self, module: &str) -> Vcd {
        self.lock().tracer.to_vcd(module)
    }

    /// Drop retained trace records (admission counters keep running).
    pub fn clear_trace(&self) {
        self.lock().tracer.clear();
    }
}

/// Batched recording handle — all methods run under the single lock
/// taken by [`ObsSink::with`].
#[derive(Debug)]
pub struct ObsBatch<'a> {
    inner: &'a mut Inner,
}

impl ObsBatch<'_> {
    fn scope_mut(&mut self, scope: ScopeId) -> &mut ScopeMetrics {
        // Indexing is safe: ScopeIds only come from register_scope on
        // the same sink, and paths are never removed. Destructuring
        // splits the registry and path-table borrows.
        let Inner {
            registry, paths, ..
        } = &mut *self.inner;
        registry.scope_mut(&paths[scope.0])
    }

    /// Admit one trace event.
    pub fn record(&mut self, cycle: u64, event: Event) {
        self.inner.tracer.record(cycle, event);
    }

    /// Add `by` to counter `name` under `scope`.
    pub fn add(&mut self, scope: ScopeId, name: &str, by: u64) {
        self.scope_mut(scope).add(name, by);
    }

    /// Set counter `name` under `scope` to an absolute value.
    pub fn set_counter(&mut self, scope: ScopeId, name: &str, value: u64) {
        self.scope_mut(scope).set_counter(name, value);
    }

    /// Set gauge `name` under `scope`.
    pub fn set_gauge(&mut self, scope: ScopeId, name: &str, value: i64) {
        self.scope_mut(scope).set_gauge(name, value);
    }

    /// Record one histogram sample under `scope`.
    pub fn observe(&mut self, scope: ScopeId, name: &str, value: u64) {
        self.scope_mut(scope).observe(name, value);
    }
}
