//! Unified observability layer for the DSP-CAM stack.
//!
//! The paper's evaluation (Tables 7–9) is built on per-level cycle and
//! occupancy accounting — update = 1 cycle, search = 2 cycles, per-group
//! issue rates. This crate provides that accounting as reusable
//! infrastructure instead of ad-hoc counters:
//!
//! * [`MetricsRegistry`] — hierarchical counters / gauges / log2-bucket
//!   histograms under `unit → group → block → cell` scope paths, with an
//!   exactly-round-tripping JSON snapshot ([`MetricsSnapshot`]).
//! * [`EventTracer`] — cycle-stamped [`Event`]s in a bounded ring
//!   buffer, exportable as JSON or as a VCD waveform via `sim::vcd`.
//! * [`ObsSink`] — the `Arc`-shared handle the hierarchy records into:
//!   scope paths are interned to `Copy` [`ScopeId`]s up front and hot
//!   operations batch every recording under a single lock
//!   ([`ObsSink::with`]).
//!
//! The instrumented crates (`dsp48`, `core`, `tc-accel`) only depend on
//! this crate behind their `obs` cargo feature, so with the feature off
//! the entire layer is compile-time zero-cost; with it on, recording is
//! one mutex round-trip per architectural operation (measured <3%
//! throughput cost on Turbo `search_stream`, see `BENCH_search.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod registry;
pub mod sink;
pub mod trace;

pub use json::{Json, JsonError};
pub use registry::{Histogram, MetricsRegistry, MetricsSnapshot, ScopeMetrics, HISTOGRAM_BUCKETS};
pub use sink::{ObsBatch, ObsSink, ScopeId};
pub use trace::{Event, EventTracer, OpKind, Tier, TraceRecord};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    #[test]
    fn sink_end_to_end() {
        let sink = Arc::new(ObsSink::with_trace_capacity(8));
        let unit = sink.register_scope("unit");
        let block = sink.register_scope("unit/group0/block0");
        assert_eq!(sink.register_scope("unit"), unit, "interning is idempotent");
        assert_eq!(sink.scope_path(block), "unit/group0/block0");

        sink.with(|o| {
            o.record(
                3,
                Event::Issue {
                    kind: OpKind::Search,
                    group: 0,
                    worker: 0,
                },
            );
            o.add(unit, "search_count", 1);
            o.add(block, "searches", 1);
            o.observe(block, "latency", 2);
            o.set_gauge(unit, "groups", 4);
        });
        sink.add(unit, "search_count", 2);

        let snap = sink.snapshot();
        assert_eq!(snap.counter("unit", "search_count"), 3);
        assert_eq!(snap.counter("unit/group0/block0", "searches"), 1);
        assert_eq!(snap.gauge("unit", "groups"), Some(4));
        assert_eq!(snap.events_recorded, 1);
        assert_eq!(
            snap.registry.rollup_counter("unit", "searches"),
            1,
            "block counters roll up through the hierarchy"
        );

        let text = snap.to_json();
        assert_eq!(MetricsSnapshot::from_json(&text).unwrap(), snap);

        let records = sink.trace_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].cycle, 3);
    }

    #[test]
    fn sink_is_shareable_across_threads() {
        let sink = Arc::new(ObsSink::new());
        let scope = sink.register_scope("unit");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sink = Arc::clone(&sink);
                s.spawn(move || {
                    for _ in 0..100 {
                        sink.add(scope, "hits", 1);
                    }
                });
            }
        });
        assert_eq!(sink.snapshot().counter("unit", "hits"), 400);
    }
}
