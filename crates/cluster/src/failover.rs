//! Cluster fault tolerance: replica epochs, shard failure plans, shed
//! policies and the bookkeeping [`crate::CamCluster`] keeps while a
//! shard is down.
//!
//! # Failure model
//!
//! A shard can fail three ways, mirroring the unit-level fault sites:
//!
//! * [`ShardFault::Crash`] — the shard loses its contents and every
//!   in-flight operation (the pipes are purged without retiring);
//! * [`ShardFault::Stall`] — the shard's issue port closes for a
//!   bounded number of ticks but its pipeline keeps draining (a slow
//!   worker, not a dead one);
//! * [`ShardFault::PoisonPool`] — the shard's dispatch pool dies
//!   mid-operation; contents are untrusted afterwards, so the cluster
//!   treats it as a crash with a detection signal instead of silence.
//!
//! # Recovery contract
//!
//! Every shard keeps K read-only **replica epochs** (rehydrated
//! snapshots, refreshed on a cycle cadence) plus a bounded
//! **acknowledged-write journal**
//! ([`dsp_cam_core::journal::OpJournal`]). A crashed shard is rebuilt
//! as `newest epoch + journal replay`, which reproduces exactly the
//! logical multiset of words whose writes were acknowledged — the
//! zero-lost-acknowledged-writes guarantee
//! (`tests/cluster_recovery.rs` proves it against a fault-free twin).
//! While the rebuild is in flight, the slot's searches are answered
//! from the newest replica (stale but never silent) and writes wait in
//! bounded-retry queues governed by a [`ShedPolicy`].

use std::collections::VecDeque;

use dsp_cam_core::faults::XorShift64;
use dsp_cam_core::unit::CamUnit;

/// Replica-epoch keeping for transparent search failover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// Read-only replica epochs kept per shard (newest answers degraded
    /// reads; must be at least 1).
    pub replicas: usize,
    /// Cycle cadence at which healthy shards refresh their newest epoch
    /// (the refresh waits for the first tick with no unacknowledged
    /// writes so the epoch is a clean journal mark). `0` disables the
    /// cadence; epochs still refresh after every rebuild and whenever
    /// the journal outgrows its watermark.
    pub refresh_interval: u64,
    /// Acknowledged-write journal watermark per shard — how many writes
    /// may separate the newest epoch from the live contents before a
    /// forced refresh.
    pub journal_capacity: usize,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            replicas: 2,
            refresh_interval: 128,
            journal_capacity: 4096,
        }
    }
}

/// Overload admission control: how long writes wait for a failed shard
/// before the cluster sheds them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedPolicy {
    /// First retry delay in ticks; attempt `n` waits
    /// `base_backoff_ticks << n` (shift saturated).
    pub base_backoff_ticks: u64,
    /// Retries per deferred write before it is shed.
    pub max_retries: u32,
    /// Per-shard budget of retry attempts per outage; replenished when
    /// the shard turns healthy again.
    pub retry_budget: u64,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy {
            base_backoff_ticks: 8,
            max_retries: 8,
            retry_budget: 4096,
        }
    }
}

/// One way a shard can fail (see the module docs for semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// Contents and in-flight operations lost; rebuild required.
    Crash,
    /// Issue port closed for `ticks` ticks; pipeline keeps draining and
    /// contents survive.
    Stall {
        /// How long the port stays closed.
        ticks: u64,
    },
    /// Dispatch pool dies mid-operation — detected (not silent), then
    /// treated as a crash.
    PoisonPool,
}

/// A [`ShardFault`] scheduled at a replay tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// Tick (relative to the replay start) at which the fault fires.
    pub at_tick: u64,
    /// Victim shard.
    pub shard: usize,
    /// What happens to it.
    pub fault: ShardFault,
}

/// A seeded, sorted schedule of shard faults for one replay — the chaos
/// half of `tests/cluster_recovery.rs`.
#[derive(Debug, Clone, Default)]
pub struct ClusterFaultPlan {
    /// Faults not yet fired, ascending by tick.
    pending: Vec<PlannedFault>,
    cursor: usize,
}

impl ClusterFaultPlan {
    /// A plan from an explicit fault list (sorted internally; ties fire
    /// in list order).
    #[must_use]
    pub fn from_faults(mut faults: Vec<PlannedFault>) -> Self {
        faults.sort_by_key(|f| f.at_tick);
        ClusterFaultPlan {
            pending: faults,
            cursor: 0,
        }
    }

    /// Draw `faults` reproducible faults over `shards` shards across a
    /// replay `horizon` of ticks. Stalls last between 4 ticks and a
    /// quarter of the horizon.
    #[must_use]
    pub fn seeded(seed: u64, shards: usize, horizon: u64, faults: usize) -> Self {
        assert!(shards > 0, "a fault plan needs a shard to aim at");
        let mut rng = XorShift64::new(seed);
        let horizon = horizon.max(1);
        let drawn = (0..faults)
            .map(|_| PlannedFault {
                at_tick: rng.below(horizon),
                shard: rng.below(shards as u64) as usize,
                fault: match rng.below(3) {
                    0 => ShardFault::Crash,
                    1 => ShardFault::Stall {
                        ticks: 4 + rng.below(horizon / 4 + 1),
                    },
                    _ => ShardFault::PoisonPool,
                },
            })
            .collect();
        ClusterFaultPlan::from_faults(drawn)
    }

    /// Pop every fault due at or before `tick` (relative to the replay
    /// start), in schedule order.
    pub fn due(&mut self, tick: u64) -> Vec<PlannedFault> {
        let start = self.cursor;
        while self.cursor < self.pending.len() && self.pending[self.cursor].at_tick <= tick {
            self.cursor += 1;
        }
        self.pending[start..self.cursor].to_vec()
    }

    /// Faults not yet fired.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.pending.len() - self.cursor
    }
}

/// Failure and recovery tallies (a snapshot is copied into
/// [`crate::ClusterReplayOutcome`] at the end of a replay).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailoverStats {
    /// Shard failures detected (injected or signalled by the dispatch
    /// path).
    pub failures_detected: u64,
    /// Searches answered from a replica epoch while the home shard was
    /// down.
    pub degraded_reads: u64,
    /// Rebuilds driven to completion (`epoch + journal` reinstalled).
    pub rebuilds_completed: u64,
    /// Ticks from failure detection to the shard serving again, one
    /// sample per recovery (stall expiries included).
    pub recovery_ticks: Vec<u64>,
    /// Migration windows rolled back because a participant failed.
    pub migration_aborts: u64,
}

/// Serving state of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShardHealth {
    /// Serving normally.
    Healthy,
    /// Issue port closed until the given cycle; contents intact.
    Stalled {
        /// Cycle the stall was detected.
        since: u64,
        /// First cycle the shard serves again.
        until: u64,
    },
    /// Contents lost; a rebuild is restoring `epoch + journal`.
    Rebuilding {
        /// Cycle the failure was detected.
        since: u64,
        /// First cycle the rebuilt unit can be reinstalled (models the
        /// restore bandwidth of one word per tick).
        ready_at: u64,
    },
}

/// One read-only replica snapshot of a shard.
#[derive(Debug)]
pub(crate) struct ReplicaEpoch {
    /// Cycle the snapshot was taken.
    #[allow(dead_code)]
    pub cycle: u64,
    /// The rehydrated unit (mutable because searching a unit is `&mut`).
    pub unit: CamUnit,
}

/// An in-flight shard rebuild (detection and completion cycles live on
/// the shard's [`ShardHealth::Rebuilding`] entry).
#[derive(Debug)]
pub(crate) struct RebuildJob {
    /// The rebuilt unit (`epoch + journal`), reinstalled at `ready_at`.
    pub unit: CamUnit,
}

/// Everything the cluster tracks once failover is enabled.
#[derive(Debug)]
pub(crate) struct FailoverState {
    pub replication: ReplicationConfig,
    pub shed: ShedPolicy,
    /// Per-shard serving state.
    pub health: Vec<ShardHealth>,
    /// Per-shard replica epochs, oldest first (back = newest).
    pub replicas: Vec<VecDeque<ReplicaEpoch>>,
    /// Per-shard in-flight rebuild.
    pub rebuilds: Vec<Option<RebuildJob>>,
    /// Per-shard flag: refresh the newest epoch at the next clean tick.
    pub due_refresh: Vec<bool>,
    pub stats: FailoverStats,
}

impl FailoverState {
    pub(crate) fn new(replication: ReplicationConfig, shards: usize) -> Self {
        FailoverState {
            replication,
            shed: ShedPolicy::default(),
            health: vec![ShardHealth::Healthy; shards],
            replicas: (0..shards).map(|_| VecDeque::new()).collect(),
            rebuilds: (0..shards).map(|_| None).collect(),
            due_refresh: vec![false; shards],
            stats: FailoverStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_sorted_and_in_range() {
        let mut a = ClusterFaultPlan::seeded(7, 4, 1000, 16);
        let b = ClusterFaultPlan::seeded(7, 4, 1000, 16);
        assert_eq!(a.pending, b.pending, "same seed, same schedule");
        assert_eq!(a.remaining(), 16);
        let mut last = 0;
        for f in &a.pending {
            assert!(f.at_tick < 1000);
            assert!(f.shard < 4);
            assert!(f.at_tick >= last, "sorted ascending");
            last = f.at_tick;
            if let ShardFault::Stall { ticks } = f.fault {
                assert!(ticks >= 4);
            }
        }
        let early: Vec<_> = a.due(499);
        assert!(early.iter().all(|f| f.at_tick <= 499));
        assert_eq!(a.remaining(), 16 - early.len());
        let late = a.due(2000);
        assert_eq!(early.len() + late.len(), 16, "every fault fires once");
        assert!(a.due(5000).is_empty());
    }

    #[test]
    fn explicit_plans_sort_by_tick() {
        let mut plan = ClusterFaultPlan::from_faults(vec![
            PlannedFault {
                at_tick: 90,
                shard: 1,
                fault: ShardFault::Crash,
            },
            PlannedFault {
                at_tick: 10,
                shard: 0,
                fault: ShardFault::Stall { ticks: 5 },
            },
        ]);
        let due = plan.due(10);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].shard, 0);
        assert_eq!(plan.remaining(), 1);
    }
}
