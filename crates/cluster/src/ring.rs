//! The consistent-hash slot ring: keys hash onto a fixed set of virtual
//! slots and slots map onto shards, so resharding moves *slots* (and
//! only their keys) rather than rehashing the world — the classic
//! consistent-hashing contract, with the slot as the unit of live
//! migration.

/// SplitMix64 finalizer — the same avalanche mix the workload
/// generator's PRNG uses, applied here as a stateless key hash so the
/// slot assignment of a key is a pure function of the key alone.
#[must_use]
pub fn mix64(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fixed ring of virtual slots, each owned by one shard. Keys hash to
/// slots ([`HashRing::slot_of`]) and slots resolve to shards
/// ([`HashRing::assignment`]); reassigning a slot
/// ([`HashRing::assign`]) is the routing half of a migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// Owning shard per slot.
    slots: Vec<usize>,
    shards: usize,
}

impl HashRing {
    /// A ring of `slots` virtual slots dealt round-robin across
    /// `shards` shards — the balanced initial assignment.
    ///
    /// # Panics
    ///
    /// Panics when either count is zero (a harness programming error).
    #[must_use]
    pub fn new(slots: usize, shards: usize) -> Self {
        assert!(slots > 0 && shards > 0, "ring needs slots and shards");
        HashRing {
            slots: (0..slots).map(|s| s % shards).collect(),
            shards,
        }
    }

    /// Number of virtual slots.
    #[must_use]
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of shards the ring routes onto.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// The slot a key hashes to — stable across any reassignment.
    #[must_use]
    pub fn slot_of(&self, key: u64) -> usize {
        (mix64(key) % self.slots.len() as u64) as usize
    }

    /// The shard currently owning `slot`.
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range.
    #[must_use]
    pub fn assignment(&self, slot: usize) -> usize {
        self.slots[slot]
    }

    /// The shard currently serving `key`.
    #[must_use]
    pub fn shard_of(&self, key: u64) -> usize {
        self.slots[self.slot_of(key)]
    }

    /// Hand `slot` to `shard` — the routing flip at migration cutover.
    ///
    /// # Panics
    ///
    /// Panics when `slot` or `shard` is out of range.
    pub fn assign(&mut self, slot: usize, shard: usize) {
        assert!(shard < self.shards, "shard {shard} out of range");
        self.slots[slot] = shard;
    }

    /// Every slot currently owned by `shard`.
    #[must_use]
    pub fn slots_on(&self, shard: usize) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == shard)
            .map(|(slot, _)| slot)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_assignment_balances_slots() {
        let ring = HashRing::new(64, 4);
        for shard in 0..4 {
            assert_eq!(ring.slots_on(shard).len(), 16);
        }
        assert_eq!(ring.num_slots(), 64);
        assert_eq!(ring.num_shards(), 4);
    }

    #[test]
    fn keys_spread_across_shards() {
        let ring = HashRing::new(64, 4);
        let mut hits = [0usize; 4];
        for key in 0..4096u64 {
            hits[ring.shard_of(key)] += 1;
        }
        for (shard, &count) in hits.iter().enumerate() {
            assert!(
                (700..=1350).contains(&count),
                "shard {shard} got {count} of 4096 keys — spread too skewed"
            );
        }
    }

    #[test]
    fn reassignment_moves_exactly_one_slot_of_keys() {
        let mut ring = HashRing::new(64, 4);
        let before: Vec<usize> = (0..4096u64).map(|k| ring.shard_of(k)).collect();
        let slot = ring.slot_of(7);
        let old = ring.assignment(slot);
        let dest = (old + 1) % 4;
        ring.assign(slot, dest);
        for key in 0..4096u64 {
            let expect = if ring.slot_of(key) == slot {
                dest
            } else {
                before[key as usize]
            };
            assert_eq!(ring.shard_of(key), expect, "key {key} moved unexpectedly");
        }
        assert_eq!(ring.shard_of(7), dest);
    }

    #[test]
    fn slot_of_is_a_pure_function_of_the_key() {
        let a = HashRing::new(64, 2);
        let mut b = HashRing::new(64, 2);
        b.assign(3, 1);
        for key in 0..512u64 {
            assert_eq!(a.slot_of(key), b.slot_of(key));
        }
    }
}
