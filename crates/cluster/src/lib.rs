//! Elastic multi-unit CAM sharding cluster.
//!
//! A [`CamCluster`] scales the single-unit CAM horizontally: keys hash
//! onto a fixed ring of virtual slots ([`HashRing`]) and slots map to
//! [`dsp_cam_core::pipelined::StreamingCam`] shards, each wrapping its
//! own `CamUnit`. Because per-operation cost grows superlinearly in
//! unit size (every search walks the whole unit), four quarter-size
//! shards answer a mixed workload well over twice as fast as one big
//! unit even on a single core — the cluster trades replicated control
//! logic for shorter per-shard walks, the same area-for-latency bargain
//! the paper's multi-unit DSP tiling makes.
//!
//! Elasticity comes from **live slot migration**
//! ([`CamCluster::begin_migration`]): the migrating slot's keys are
//! frozen into a read-only replica snapshot (via the core `rehydrate`
//! path) that keeps answering searches while the destination shard
//! absorbs the moved words through its write buffer. No query is ever
//! dropped or reordered — each key has exactly one serving home at any
//! instant, and per-shard pipes are FIFO.
//!
//! [`ClusterSnapshot`] replicates read-only copies of every shard for
//! multi-shard search fan-out outside the clocked pipeline, and
//! [`replay_cluster`] drives a whole `dsp-cam-workload` trace through a
//! bounded async-style ingest queue, producing per-shard retire-latency
//! and migration-stall histograms.
//!
//! **Fault tolerance** ([`CamCluster::enable_failover`]) keeps the
//! cluster serving through shard failures: each shard maintains
//! [`ReplicationConfig::replicas`] read-only replica epochs (clean
//! journal marks taken via the `rehydrate` path) plus a bounded journal
//! of acknowledged writes since the newest epoch. A crashed or
//! pool-poisoned shard — injected by a seeded [`ClusterFaultPlan`] or
//! detected live from `DispatchTimeout` / `WorkerPoolPoisoned` — has
//! its slots degraded to replica-served reads while a rebuild restores
//! `epoch + journal` at one word per tick, guaranteeing zero lost
//! acknowledged writes; a failed migration participant rolls the
//! window back to source-serving ([`CamCluster::abort_migration`]); and
//! writes aimed at a down shard wait under a bounded-backoff
//! [`ShedPolicy`] before the cluster sheds them with
//! [`ClusterError::Overloaded`]. See `tests/cluster_recovery.rs` for
//! the chaos contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod failover;
mod ingest;
mod ring;

pub use cluster::{CamCluster, ClusterCounters, ClusterError, ClusterSnapshot, RecordPlan};
pub use failover::{
    ClusterFaultPlan, FailoverStats, PlannedFault, ReplicationConfig, ShardFault, ShedPolicy,
};
pub use ingest::{replay_cluster, ClusterReplayOutcome, IngestConfig, MigrationPlan};
pub use ring::{mix64, HashRing};
