//! Elastic multi-unit CAM sharding cluster.
//!
//! A [`CamCluster`] scales the single-unit CAM horizontally: keys hash
//! onto a fixed ring of virtual slots ([`HashRing`]) and slots map to
//! [`dsp_cam_core::pipelined::StreamingCam`] shards, each wrapping its
//! own `CamUnit`. Because per-operation cost grows superlinearly in
//! unit size (every search walks the whole unit), four quarter-size
//! shards answer a mixed workload well over twice as fast as one big
//! unit even on a single core — the cluster trades replicated control
//! logic for shorter per-shard walks, the same area-for-latency bargain
//! the paper's multi-unit DSP tiling makes.
//!
//! Elasticity comes from **live slot migration**
//! ([`CamCluster::begin_migration`]): the migrating slot's keys are
//! frozen into a read-only replica snapshot (via the core `rehydrate`
//! path) that keeps answering searches while the destination shard
//! absorbs the moved words through its write buffer. No query is ever
//! dropped or reordered — each key has exactly one serving home at any
//! instant, and per-shard pipes are FIFO.
//!
//! [`ClusterSnapshot`] replicates read-only copies of every shard for
//! multi-shard search fan-out outside the clocked pipeline, and
//! [`replay_cluster`] drives a whole `dsp-cam-workload` trace through a
//! bounded async-style ingest queue, producing per-shard retire-latency
//! and migration-stall histograms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod ingest;
mod ring;

pub use cluster::{CamCluster, ClusterCounters, ClusterError, ClusterSnapshot, RecordPlan};
pub use ingest::{replay_cluster, ClusterReplayOutcome, IngestConfig, MigrationPlan};
pub use ring::{mix64, HashRing};
