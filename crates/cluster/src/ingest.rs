//! Bounded async-style ingest: replay a workload trace against a
//! [`CamCluster`] cycle by cycle through a bounded arrival queue.
//!
//! Records enter the queue on their trace arrival cycles (backpressure
//! when the queue is full — nothing is ever dropped), and leave it
//! strictly in order: a record is dispatched only once every sub-issue
//! of the record in front of it has claimed an issue slot. Consecutive
//! records bound for *different* shards issue in the same cycle — the
//! cluster's throughput win — while per-key operation order is
//! preserved by construction (one serving home per key at any instant,
//! FIFO pipes per shard).
//!
//! A [`MigrationPlan`] opens a live migration window mid-replay; the
//! loop keeps feeding queries through the window and the outcome
//! records the migration's stall cycles next to the per-shard retire
//! latency samples.

use std::collections::VecDeque;

use dsp_cam_core::pipelined::{Op, RetireRecord};
use dsp_cam_workload::{percentile, Trace};

use crate::cluster::{CamCluster, ClusterError};

/// Open a migration window after `after_records` trace records have
/// been dispatched.
#[derive(Debug, Clone, Copy)]
pub struct MigrationPlan {
    /// Dispatch position at which to open the window.
    pub after_records: usize,
    /// Slot to move.
    pub slot: usize,
    /// Destination shard.
    pub dest: usize,
}

/// Ingest-loop knobs.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Bound on records waiting between arrival and dispatch. Arrivals
    /// beyond it wait at the source (backpressure, never a drop).
    pub queue_capacity: usize,
    /// Optional mid-replay live migration.
    pub migrate: Option<MigrationPlan>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            queue_capacity: 64,
            migrate: None,
        }
    }
}

/// Everything one cluster replay observed.
#[derive(Debug, Clone, Default)]
pub struct ClusterReplayOutcome {
    /// Sub-operations issued into shard pipelines.
    pub issued: u64,
    /// Completions harvested from shard pipelines.
    pub completions: u64,
    /// Searches answered synchronously by a frozen migration replica.
    pub frozen_answers: u64,
    /// Issued minus completed at quiescence — the zero-dropped-query
    /// invariant demands this is 0.
    pub dropped: u64,
    /// Total lockstep cycles, quiescence included.
    pub ticks: u64,
    /// Matching search completions (frozen answers included).
    pub search_hits: u64,
    /// Deletes that invalidated an entry.
    pub delete_hits: u64,
    /// Updates rejected at admission.
    pub update_rejections: u64,
    /// End-to-end retire latencies per shard (arrival to retire,
    /// queueing included), in retire order.
    pub per_shard_latencies: Vec<Vec<u64>>,
    /// Latencies of frozen-replica answers (dispatch wait plus the
    /// search-pipe latency the replica port mirrors).
    pub frozen_latencies: Vec<u64>,
    /// Stall cycles of each migration completed during the replay.
    pub migration_stalls: Vec<u64>,
    /// Deepest arrival queue observed.
    pub peak_queue_depth: usize,
    /// Cycles the dispatch head spent blocked on a busy issue slot.
    pub head_of_line_stalls: u64,
}

impl ClusterReplayOutcome {
    /// `(p50, p99)` retire latency of shard `i`'s samples (0 when the
    /// shard retired nothing).
    #[must_use]
    pub fn shard_percentiles(&self, i: usize) -> (u64, u64) {
        let lats = &self.per_shard_latencies[i];
        (percentile(lats, 50.0), percentile(lats, 99.0))
    }

    /// Record the replay's histograms into an observability sink:
    /// per-shard retire latencies under `cluster/shard{i}` and
    /// migration stalls under `cluster/migration`.
    #[cfg(feature = "obs")]
    pub fn observe_into(&self, sink: &std::sync::Arc<dsp_cam_obs::ObsSink>) {
        for (i, lats) in self.per_shard_latencies.iter().enumerate() {
            let scope = sink.register_scope(&format!("cluster/shard{i}"));
            sink.with(|o| {
                for &cycles in lats {
                    o.observe(scope, "retire_latency_cycles", cycles);
                }
            });
        }
        let scope = sink.register_scope("cluster/migration");
        sink.with(|o| {
            for &stall in &self.migration_stalls {
                o.observe(scope, "migration_stall_cycles", stall);
            }
        });
    }
}

/// One sub-issue waiting for its shard's issue slot.
#[derive(Debug)]
struct PendingSub {
    shard: usize,
    op: Op,
    arrival: u64,
}

/// Replay `trace` against `cluster` through the bounded ingest loop.
/// The trace's prefill is stored (and flushed) before the clock starts;
/// the cluster is driven to quiescence (open migration included) before
/// the outcome is computed.
///
/// # Errors
///
/// Propagates prefill admission failures (as
/// [`ClusterError::Admission`]) and [`CamCluster::begin_migration`]
/// errors from the migration plan.
pub fn replay_cluster(
    trace: &Trace,
    cluster: &mut CamCluster,
    config: &IngestConfig,
) -> Result<ClusterReplayOutcome, ClusterError> {
    cluster
        .prefill(trace.prefill_words())
        .map_err(ClusterError::Admission)?;
    let shards = cluster.num_shards();
    for i in 0..shards {
        cluster.shard_mut(i).enable_retire_log();
        cluster.shard_mut(i).drain_retired();
    }
    let mut outcome = ClusterReplayOutcome {
        per_shard_latencies: vec![Vec::new(); shards],
        ..ClusterReplayOutcome::default()
    };

    let start = cluster.cycle();
    let arrivals = trace.arrivals(start);
    let mut next_record = 0usize;
    let mut dispatched = 0usize;
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut subs: VecDeque<PendingSub> = VecDeque::new();
    let mut migrate = config.migrate;

    while next_record < trace.records.len() || !queue.is_empty() || !subs.is_empty() {
        // Open the migration window at its planned dispatch position.
        if let Some(plan) = migrate {
            if dispatched >= plan.after_records && subs.is_empty() {
                cluster.begin_migration(plan.slot, plan.dest)?;
                migrate = None;
            }
        }
        let now = cluster.cycle();
        // Admit due arrivals up to the queue bound (backpressure: the
        // rest wait at the source and keep their arrival stamps).
        while next_record < trace.records.len()
            && arrivals[next_record] <= now
            && queue.len() < config.queue_capacity
        {
            queue.push_back(next_record);
            next_record += 1;
        }
        outcome.peak_queue_depth = outcome.peak_queue_depth.max(queue.len());

        // Dispatch strictly in order: expand the head record into shard
        // sub-issues (answering frozen-replica reads on the spot), then
        // issue leading sub-ops while their shards' slots are free.
        while subs.len() < shards {
            let Some(&record) = queue.front() else { break };
            let arrival = arrivals[record];
            let plan = cluster.plan(&trace.records[record].op);
            outcome.frozen_answers += plan.frozen.len() as u64;
            for (_, result) in plan.frozen {
                outcome.search_hits += u64::from(result.is_match());
                let latency = (now - arrival) + cluster.shard(0).unit().config().search_latency();
                outcome.frozen_latencies.push(latency);
            }
            for (shard, op, _) in plan.subs {
                subs.push_back(PendingSub { shard, op, arrival });
            }
            queue.pop_front();
            dispatched += 1;
        }
        let mut claimed = vec![false; shards];
        while let Some(front) = subs.front() {
            if claimed[front.shard] {
                outcome.head_of_line_stalls += 1;
                break;
            }
            let sub = subs.pop_front().expect("front checked");
            claimed[sub.shard] = true;
            match cluster.shard_mut(sub.shard).issue_at(sub.op, sub.arrival) {
                Ok(()) => outcome.issued += 1,
                Err(_) => unreachable!("slot claimed once per cycle"),
            }
        }

        cluster.tick();
        harvest(cluster, &mut outcome);
    }
    cluster.quiesce();
    harvest(cluster, &mut outcome);

    outcome.ticks = cluster.cycle() - start;
    outcome.dropped = outcome.issued - outcome.completions;
    outcome.migration_stalls = cluster.migration_stalls().to_vec();
    Ok(outcome)
}

/// Pull retired completions and retire-log stamps off every shard.
fn harvest(cluster: &mut CamCluster, outcome: &mut ClusterReplayOutcome) {
    for i in 0..cluster.num_shards() {
        let retired = cluster.shard_mut(i).drain_retired();
        for (_, done) in &retired {
            cluster.tally(done);
        }
        outcome.completions += retired.len() as u64;
        for (_, done) in retired {
            match done {
                dsp_cam_core::pipelined::Completion::Search(r) => {
                    outcome.search_hits += u64::from(r.is_match());
                }
                dsp_cam_core::pipelined::Completion::SearchStream(rs) => {
                    outcome.search_hits += rs.iter().filter(|r| r.is_match()).count() as u64;
                }
                dsp_cam_core::pipelined::Completion::SearchMulti(Ok(rs)) => {
                    outcome.search_hits += rs.iter().filter(|r| r.is_match()).count() as u64;
                }
                dsp_cam_core::pipelined::Completion::SearchMulti(Err(_)) => {}
                dsp_cam_core::pipelined::Completion::Update(r) => {
                    outcome.update_rejections += u64::from(r.is_err());
                }
                dsp_cam_core::pipelined::Completion::Delete(hit) => {
                    outcome.delete_hits += u64::from(hit);
                }
            }
        }
        let records = cluster.shard_mut(i).take_retire_log();
        outcome.per_shard_latencies[i].extend(records.iter().map(RetireRecord::latency));
    }
}
