//! Bounded async-style ingest: replay a workload trace against a
//! [`CamCluster`] cycle by cycle through a bounded arrival queue.
//!
//! Records enter the queue on their trace arrival cycles (backpressure
//! when the queue is full — nothing is ever dropped), and leave it
//! strictly in order: a record is dispatched only once every sub-issue
//! of the record in front of it has claimed an issue slot. Consecutive
//! records bound for *different* shards issue in the same cycle — the
//! cluster's throughput win — while per-key operation order is
//! preserved by construction (one serving home per key at any instant,
//! FIFO pipes per shard).
//!
//! A [`MigrationPlan`] opens a live migration window mid-replay; the
//! loop keeps feeding queries through the window and the outcome
//! records the migration's stall cycles next to the per-shard retire
//! latency samples.
//!
//! # Failure handling
//!
//! With [`CamCluster::enable_failover`] on, a [`ClusterFaultPlan`]
//! kills, stalls or pool-poisons shards mid-replay and the loop keeps
//! the workload flowing:
//!
//! * **reads** aimed at a failed shard are answered immediately from
//!   its newest replica epoch (degraded — stale but never silent);
//! * **writes** aimed at a failed shard wait in a FIFO retry queue
//!   with exponential backoff, bounded per-write by the shed policy's
//!   `max_retries` and per shard by its `retry_budget`; past either
//!   bound the write is **shed** (counted, never silently lost);
//! * ops **purged** by a crash (issued but never acknowledged) are
//!   re-queued at the dispatch head and re-issued after recovery, so
//!   retire-order accounting stays exact;
//! * an infrastructure-failure completion ([`DispatchTimeout`] /
//!   [`WorkerPoolPoisoned`]) triggers shard recovery and ONE bounded
//!   re-issue of the failed write — the unit-level auto-replay
//!   contract (only idempotent searches replay below) lifted to the
//!   cluster, where the journal makes write retry safe.
//!
//! Fault ticks are relative to the replay start; faults scheduled past
//! the replay's natural quiescence never fire.
//!
//! [`DispatchTimeout`]: dsp_cam_core::error::CamError::DispatchTimeout
//! [`WorkerPoolPoisoned`]: dsp_cam_core::error::CamError::WorkerPoolPoisoned

use std::collections::VecDeque;

use dsp_cam_core::pipelined::{Completion, Op, RetireRecord};
use dsp_cam_workload::{percentile, Trace};

use crate::cluster::{infra_error, CamCluster, ClusterError};
use crate::failover::{ClusterFaultPlan, ShardFault, ShedPolicy};

/// Open a migration window after `after_records` trace records have
/// been dispatched.
#[derive(Debug, Clone, Copy)]
pub struct MigrationPlan {
    /// Dispatch position at which to open the window.
    pub after_records: usize,
    /// Slot to move.
    pub slot: usize,
    /// Destination shard.
    pub dest: usize,
}

/// Ingest-loop knobs.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Bound on records waiting between arrival and dispatch. Arrivals
    /// beyond it wait at the source (backpressure, never a drop).
    pub queue_capacity: usize,
    /// Optional mid-replay live migration.
    pub migrate: Option<MigrationPlan>,
    /// Optional shard-failure schedule (requires
    /// [`CamCluster::enable_failover`] on the cluster).
    pub faults: Option<ClusterFaultPlan>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            queue_capacity: 64,
            migrate: None,
            faults: None,
        }
    }
}

/// Everything one cluster replay observed.
#[derive(Debug, Clone, Default)]
pub struct ClusterReplayOutcome {
    /// Sub-operations issued into shard pipelines (re-issues of purged
    /// ops counted once more; purged issues subtracted).
    pub issued: u64,
    /// Completions harvested from shard pipelines.
    pub completions: u64,
    /// Searches answered synchronously by a frozen migration replica.
    pub frozen_answers: u64,
    /// Search keys answered from a replica epoch while their home
    /// shard was down (degraded reads).
    pub degraded_answers: u64,
    /// Issued minus completed at quiescence — the zero-dropped-query
    /// invariant demands this is 0.
    pub dropped: u64,
    /// Total lockstep cycles, quiescence included.
    pub ticks: u64,
    /// Matching search completions (frozen and degraded answers
    /// included).
    pub search_hits: u64,
    /// Deletes that invalidated an entry.
    pub delete_hits: u64,
    /// Updates rejected at admission (infrastructure failures are
    /// retried, not counted here).
    pub update_rejections: u64,
    /// Keys/ops presented overall (sub-issues, frozen and degraded
    /// answers) — the availability denominator.
    pub presented: u64,
    /// Writes dropped by overload admission control after their retry
    /// bounds were spent.
    pub shed_writes: u64,
    /// Deferred-write retry attempts against still-failed shards.
    pub write_retries: u64,
    /// Writes re-issued once after an infrastructure-failure
    /// completion (dispatch timeout / poisoned pool).
    pub infra_retries: u64,
    /// Writes whose bounded infrastructure retry failed again —
    /// permanently unanswered.
    pub infra_failures: u64,
    /// Shard failures detected during the replay.
    pub failures_detected: u64,
    /// Shard rebuilds driven to completion.
    pub rebuilds_completed: u64,
    /// Ticks from each failure detection to the shard serving again.
    pub recovery_ticks: Vec<u64>,
    /// Migration windows rolled back because a participant failed.
    pub migration_aborts: u64,
    /// End-to-end retire latencies per shard (arrival to retire,
    /// queueing included), in retire order.
    pub per_shard_latencies: Vec<Vec<u64>>,
    /// Latencies of frozen-replica answers (dispatch wait plus the
    /// search-pipe latency the replica port mirrors).
    pub frozen_latencies: Vec<u64>,
    /// Latencies of degraded replica-epoch answers, same convention.
    pub degraded_latencies: Vec<u64>,
    /// Stall cycles of each migration completed during the replay.
    pub migration_stalls: Vec<u64>,
    /// Deepest arrival queue observed.
    pub peak_queue_depth: usize,
    /// Cycles the dispatch head spent blocked on a busy issue slot.
    pub head_of_line_stalls: u64,
}

impl ClusterReplayOutcome {
    /// `(p50, p99)` retire latency of shard `i`'s samples (0 when the
    /// shard retired nothing).
    #[must_use]
    pub fn shard_percentiles(&self, i: usize) -> (u64, u64) {
        let lats = &self.per_shard_latencies[i];
        (percentile(lats, 50.0), percentile(lats, 99.0))
    }

    /// Fraction of presented keys/ops that were answered (degraded
    /// answers count — stale beats silent): shed writes and permanent
    /// infrastructure failures are the only unanswered work. 1.0 on an
    /// empty replay.
    #[must_use]
    pub fn availability(&self) -> f64 {
        if self.presented == 0 {
            return 1.0;
        }
        let unanswered = self.shed_writes + self.infra_failures;
        1.0 - (unanswered as f64 / self.presented as f64)
    }

    /// Record the replay's histograms into an observability sink:
    /// per-shard retire latencies under `cluster/shard{i}`, migration
    /// stalls under `cluster/migration`, and failover counters plus
    /// recovery/degraded-latency histograms under `cluster/failover`.
    #[cfg(feature = "obs")]
    pub fn observe_into(&self, sink: &std::sync::Arc<dsp_cam_obs::ObsSink>) {
        for (i, lats) in self.per_shard_latencies.iter().enumerate() {
            let scope = sink.register_scope(&format!("cluster/shard{i}"));
            sink.with(|o| {
                for &cycles in lats {
                    o.observe(scope, "retire_latency_cycles", cycles);
                }
            });
        }
        let scope = sink.register_scope("cluster/migration");
        sink.with(|o| {
            for &stall in &self.migration_stalls {
                o.observe(scope, "migration_stall_cycles", stall);
            }
        });
        let scope = sink.register_scope("cluster/failover");
        sink.with(|o| {
            o.add(scope, "failures_detected", self.failures_detected);
            o.add(scope, "rebuilds_completed", self.rebuilds_completed);
            o.add(scope, "degraded_answers", self.degraded_answers);
            o.add(scope, "shed_writes", self.shed_writes);
            o.add(scope, "write_retries", self.write_retries);
            o.add(scope, "infra_retries", self.infra_retries);
            o.add(scope, "migration_aborts", self.migration_aborts);
            for &t in &self.recovery_ticks {
                o.observe(scope, "recovery_ticks", t);
            }
            for &l in &self.degraded_latencies {
                o.observe(scope, "degraded_read_latency_cycles", l);
            }
        });
    }
}

/// One sub-issue waiting for its shard's issue slot.
#[derive(Debug)]
struct PendingSub {
    shard: usize,
    op: Op,
    arrival: u64,
    /// This write already burned its one infrastructure retry.
    infra_retried: bool,
}

/// One issued sub-op whose completion has not been harvested. Per
/// shard, retire order equals issue order, so a FIFO matches
/// completions back to what was issued — and a crash's purged ops are
/// exactly the queue's remainder.
#[derive(Debug)]
struct OutstandingOp {
    op: Op,
    arrival: u64,
    infra_retried: bool,
}

/// A write waiting out a failed shard under bounded retry.
#[derive(Debug)]
struct DeferredWrite {
    sub: PendingSub,
    attempts: u32,
    due: u64,
}

/// Keys (searches) or ops (writes) a sub-issue presents — the
/// availability denominator's unit.
fn presented_of(op: &Op) -> u64 {
    match op {
        Op::SearchStream(keys) | Op::SearchMulti(keys) => keys.len() as u64,
        _ => 1,
    }
}

/// Replay `trace` against `cluster` through the bounded ingest loop.
/// The trace's prefill is stored (and flushed) before the clock starts;
/// the cluster is driven to quiescence (open migration window, pending
/// rebuilds and deferred writes included) before the outcome is
/// computed.
///
/// # Errors
///
/// Propagates prefill admission failures (as
/// [`ClusterError::Admission`]), [`CamCluster::begin_migration`] errors
/// from the migration plan, and [`ClusterError::FailoverDisabled`] when
/// a fault plan is supplied without [`CamCluster::enable_failover`].
pub fn replay_cluster(
    trace: &Trace,
    cluster: &mut CamCluster,
    config: &IngestConfig,
) -> Result<ClusterReplayOutcome, ClusterError> {
    if config.faults.is_some() && !cluster.failover_enabled() {
        return Err(ClusterError::FailoverDisabled);
    }
    cluster
        .prefill(trace.prefill_words())
        .map_err(ClusterError::Admission)?;
    let shards = cluster.num_shards();
    for i in 0..shards {
        cluster.shard_mut(i).enable_retire_log();
        cluster.shard_mut(i).drain_retired();
    }
    let mut outcome = ClusterReplayOutcome {
        per_shard_latencies: vec![Vec::new(); shards],
        ..ClusterReplayOutcome::default()
    };

    let start = cluster.cycle();
    let arrivals = trace.arrivals(start);
    let search_latency = cluster.shard(0).unit().config().search_latency();
    let policy = cluster.shed_policy();
    let mut next_record = 0usize;
    let mut dispatched = 0usize;
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut subs: VecDeque<PendingSub> = VecDeque::new();
    let mut deferred: VecDeque<DeferredWrite> = VecDeque::new();
    let mut outstanding: Vec<VecDeque<OutstandingOp>> =
        (0..shards).map(|_| VecDeque::new()).collect();
    let mut budget: Vec<u64> = vec![policy.retry_budget; shards];
    let mut was_healthy: Vec<bool> = vec![true; shards];
    let mut migrate = config.migrate;
    let mut faults = config.faults.clone();

    loop {
        let pending_work = next_record < trace.records.len()
            || !queue.is_empty()
            || !subs.is_empty()
            || !deferred.is_empty()
            || outstanding.iter().any(|q| !q.is_empty());
        let draining = cluster.migration_in_progress()
            || cluster.any_unhealthy()
            || (0..shards)
                .any(|i| cluster.shard(i).in_flight() || cluster.shard(i).buffer_depth() > 0);
        if !pending_work && !draining {
            break;
        }
        let now = cluster.cycle();

        // Fire due shard faults. A crash purges the shard's in-flight
        // ops (their completions will never arrive): give them back to
        // the dispatch head in issue order — they were never
        // acknowledged, so re-issue is the client's contract.
        if let Some(plan) = &mut faults {
            for fault in plan.due(now - start) {
                cluster.inject_shard_fault(fault.shard, fault.fault)?;
                if matches!(fault.fault, ShardFault::Crash | ShardFault::PoisonPool) {
                    requeue_purged(fault.shard, &mut outstanding, &mut subs, &mut outcome);
                }
            }
        }
        // Replenish a shard's retry budget when it comes back.
        for i in 0..shards {
            let healthy = cluster.shard_healthy(i);
            if healthy && !was_healthy[i] {
                budget[i] = policy.retry_budget;
            }
            was_healthy[i] = healthy;
        }

        // Open the migration window at its planned dispatch position
        // (deferred writes drained first: their routing predates the
        // window). An unavailable participant defers the window, not
        // the replay.
        if let Some(plan) = migrate {
            if dispatched >= plan.after_records && subs.is_empty() && deferred.is_empty() {
                match cluster.begin_migration(plan.slot, plan.dest) {
                    Ok(()) => migrate = None,
                    Err(ClusterError::ShardUnavailable { .. }) => {}
                    Err(err) => return Err(err),
                }
            }
        }
        let now = cluster.cycle();
        // Admit due arrivals up to the queue bound (backpressure: the
        // rest wait at the source and keep their arrival stamps).
        while next_record < trace.records.len()
            && arrivals[next_record] <= now
            && queue.len() < config.queue_capacity
        {
            queue.push_back(next_record);
            next_record += 1;
        }
        outcome.peak_queue_depth = outcome.peak_queue_depth.max(queue.len());

        // Dispatch strictly in order: expand the head record into shard
        // sub-issues, answering frozen-replica and degraded reads on
        // the spot.
        while subs.len() < shards {
            let Some(&record) = queue.front() else { break };
            let arrival = arrivals[record];
            let plan = cluster.plan(&trace.records[record].op);
            outcome.frozen_answers += plan.frozen.len() as u64;
            outcome.presented += (plan.frozen.len() + plan.degraded.len()) as u64;
            for (_, result) in plan.frozen {
                outcome.search_hits += u64::from(result.is_match());
                outcome
                    .frozen_latencies
                    .push((now - arrival) + search_latency);
            }
            outcome.degraded_answers += plan.degraded.len() as u64;
            for (_, result) in plan.degraded {
                outcome.search_hits += u64::from(result.is_match());
                outcome
                    .degraded_latencies
                    .push((now - arrival) + search_latency);
            }
            for (shard, op, _) in plan.subs {
                outcome.presented += presented_of(&op);
                subs.push_back(PendingSub {
                    shard,
                    op,
                    arrival,
                    infra_retried: false,
                });
            }
            queue.pop_front();
            dispatched += 1;
        }

        let mut claimed = vec![false; shards];
        // Deferred writes first (they are the oldest work): the head
        // re-resolves its shard (a rollback may have re-homed its key)
        // and issues if the shard is back, retries with exponential
        // backoff if not, and is shed once its bounds are spent.
        while let Some(head) = deferred.front() {
            let target = cluster
                .resolve_shard(&head.sub.op)
                .unwrap_or(head.sub.shard);
            if cluster.shard_healthy(target) {
                if claimed[target] {
                    outcome.head_of_line_stalls += 1;
                    break;
                }
                let item = deferred.pop_front().expect("front checked");
                issue_sub(
                    cluster,
                    PendingSub {
                        shard: target,
                        ..item.sub
                    },
                    &mut claimed,
                    &mut outstanding,
                    &mut outcome,
                );
            } else if now >= head.due {
                let mut item = deferred.pop_front().expect("front checked");
                item.attempts += 1;
                outcome.write_retries += 1;
                budget[target] = budget[target].saturating_sub(1);
                if item.attempts > policy.max_retries || budget[target] == 0 {
                    // Bounds spent: shed. Counted, never silent.
                    outcome.shed_writes += 1;
                    continue;
                }
                item.due = now + backoff(&policy, item.attempts);
                deferred.push_front(item);
                break;
            } else {
                break;
            }
        }
        // Then the dispatch queue. Writes bound for a failed shard (or
        // queued behind deferred writes — FIFO among writes keeps
        // per-key order) defer; reads bound for a failed shard answer
        // degraded immediately; everything else issues while its
        // shard's slot is free.
        while let Some(front) = subs.front() {
            let target = cluster.resolve_shard(&front.op).unwrap_or(front.shard);
            let is_write = matches!(front.op, Op::Update(_) | Op::Delete(_));
            if is_write && (!cluster.shard_healthy(target) || !deferred.is_empty()) {
                let sub = subs.pop_front().expect("front checked");
                deferred.push_back(DeferredWrite {
                    sub: PendingSub {
                        shard: target,
                        ..sub
                    },
                    attempts: 0,
                    due: now,
                });
                continue;
            }
            if !is_write && !cluster.shard_healthy(target) {
                let sub = subs.pop_front().expect("front checked");
                let results = cluster
                    .degraded_answer(target, &sub.op)
                    .expect("non-write sub");
                outcome.degraded_answers += results.len() as u64;
                for result in &results {
                    outcome.search_hits += u64::from(result.is_match());
                }
                let latency = (now - sub.arrival) + search_latency;
                outcome
                    .degraded_latencies
                    .extend(std::iter::repeat_n(latency, results.len()));
                continue;
            }
            if claimed[target] {
                outcome.head_of_line_stalls += 1;
                break;
            }
            let sub = subs.pop_front().expect("front checked");
            issue_sub(
                cluster,
                PendingSub {
                    shard: target,
                    ..sub
                },
                &mut claimed,
                &mut outstanding,
                &mut outcome,
            );
        }

        cluster.tick();
        harvest(
            cluster,
            &mut outcome,
            &mut outstanding,
            &mut subs,
            &mut deferred,
        );
    }
    cluster.quiesce();
    harvest(
        cluster,
        &mut outcome,
        &mut outstanding,
        &mut subs,
        &mut deferred,
    );

    outcome.ticks = cluster.cycle() - start;
    outcome.dropped = outcome.issued - outcome.completions;
    outcome.migration_stalls = cluster.migration_stalls().to_vec();
    if let Some(stats) = cluster.failover_stats() {
        outcome.failures_detected = stats.failures_detected;
        outcome.rebuilds_completed = stats.rebuilds_completed;
        outcome.recovery_ticks = stats.recovery_ticks.clone();
        outcome.migration_aborts = stats.migration_aborts;
    }
    Ok(outcome)
}

/// Attempt `n`'s wait before re-checking a failed shard.
fn backoff(policy: &ShedPolicy, attempts: u32) -> u64 {
    policy
        .base_backoff_ticks
        .saturating_mul(1u64 << attempts.min(16))
}

/// Issue one sub-op on its (already re-resolved, healthy, unclaimed)
/// shard and push its outstanding record.
fn issue_sub(
    cluster: &mut CamCluster,
    sub: PendingSub,
    claimed: &mut [bool],
    outstanding: &mut [VecDeque<OutstandingOp>],
    outcome: &mut ClusterReplayOutcome,
) {
    claimed[sub.shard] = true;
    outstanding[sub.shard].push_back(OutstandingOp {
        op: sub.op.clone(),
        arrival: sub.arrival,
        infra_retried: sub.infra_retried,
    });
    match cluster.shard_mut(sub.shard).issue_at(sub.op, sub.arrival) {
        Ok(()) => outcome.issued += 1,
        Err(_) => unreachable!("slot claimed once per cycle"),
    }
}

/// Give a crashed shard's purged in-flight ops back to the dispatch
/// head in their original issue order — their completions will never
/// arrive, so they are un-issued and go around again.
fn requeue_purged(
    shard: usize,
    outstanding: &mut [VecDeque<OutstandingOp>],
    subs: &mut VecDeque<PendingSub>,
    outcome: &mut ClusterReplayOutcome,
) {
    while let Some(rec) = outstanding[shard].pop_back() {
        outcome.issued -= 1;
        subs.push_front(PendingSub {
            shard,
            op: rec.op,
            arrival: rec.arrival,
            infra_retried: rec.infra_retried,
        });
    }
}

/// Pull retired completions and retire-log stamps off every shard,
/// matching each completion to its outstanding record (per-shard
/// retire order equals issue order). Infrastructure-failure write
/// completions trigger recovery and one bounded re-issue.
fn harvest(
    cluster: &mut CamCluster,
    outcome: &mut ClusterReplayOutcome,
    outstanding: &mut [VecDeque<OutstandingOp>],
    subs: &mut VecDeque<PendingSub>,
    deferred: &mut VecDeque<DeferredWrite>,
) {
    for i in 0..cluster.num_shards() {
        let retired = cluster.shard_mut(i).drain_retired();
        let mut reissues: Vec<DeferredWrite> = Vec::new();
        for (_, done) in retired {
            cluster.tally(&done);
            outcome.completions += 1;
            let rec = outstanding[i].pop_front();
            match &done {
                Completion::Search(r) => {
                    outcome.search_hits += u64::from(r.is_match());
                }
                Completion::SearchStream(rs) | Completion::SearchMulti(Ok(rs)) => {
                    outcome.search_hits += rs.iter().filter(|r| r.is_match()).count() as u64;
                }
                Completion::SearchMulti(Err(_)) => {}
                Completion::Update(Ok(())) => {}
                Completion::Update(Err(err)) if infra_error(err) => {
                    let Some(rec) = rec else { continue };
                    if rec.infra_retried {
                        // The bounded retry also died: permanent.
                        outcome.infra_failures += 1;
                    } else {
                        outcome.infra_retries += 1;
                        // The shard's dispatch machinery died under the
                        // op: recover (rebuild from epoch + journal
                        // under failover; pool self-rebuilds without),
                        // requeue whatever the recovery purged, and
                        // re-issue this write exactly once.
                        if cluster.note_dispatch_failure(i) {
                            requeue_purged(i, outstanding, subs, outcome);
                        }
                        reissues.push(DeferredWrite {
                            sub: PendingSub {
                                shard: i,
                                op: rec.op,
                                arrival: rec.arrival,
                                infra_retried: true,
                            },
                            attempts: 0,
                            due: cluster.cycle(),
                        });
                    }
                }
                Completion::Update(Err(_)) => {
                    outcome.update_rejections += 1;
                }
                Completion::Delete(hit) => {
                    outcome.delete_hits += u64::from(*hit);
                }
            }
        }
        // Oldest first at the deferred head (deferred was empty when
        // these issued, so they precede everything queued there now).
        for item in reissues.into_iter().rev() {
            deferred.push_front(item);
        }
        let records = cluster.shard_mut(i).take_retire_log();
        outcome.per_shard_latencies[i].extend(records.iter().map(RetireRecord::latency));
    }
}
