//! The elastic sharding cluster: N [`StreamingCam`] shards behind a
//! consistent-hash [`HashRing`], with live slot migration riding the
//! snapshot ([`CamUnit::rehydrate`]) path.
//!
//! # Migration protocol
//!
//! [`CamCluster::begin_migration`] freezes the migrating slot in four
//! steps, none of which drops or reorders a query:
//!
//! 1. **quiesce** the source shard (drain its pipeline and write
//!    buffer, counted as migration stall cycles);
//! 2. **freeze** a read-only replica of the source unit via
//!    `rehydrate()` — the migrating slot serves its searches from this
//!    replica for the whole window;
//! 3. **stage** the slot's stored words into the destination shard's
//!    write buffer, which drains in the background on the destination's
//!    idle ticks;
//! 4. **redirect** in-window writes for the slot to the destination,
//!    tracking the touched keys in a dirty set so their searches are
//!    read-your-writes (the destination's own write buffer gives the
//!    per-key flush).
//!
//! Cutover fires from [`CamCluster::tick`] once the destination buffer
//! is drained: the moved words are deleted from the source, the ring
//! slot flips to the destination, and the frozen replica is dropped.
//! Because every key has exactly one serving home at any instant and
//! shard pipelines are FIFO per pipe, per-key operation order is
//! preserved across the entire window — the observational-equivalence
//! property `tests/migration_equivalence.rs` proves against a
//! no-migration reference.

use std::collections::HashSet;
use std::fmt;

use dsp_cam_core::config::UnitConfig;
use dsp_cam_core::error::{CamError, ConfigError};
use dsp_cam_core::journal::JournalOp;
use dsp_cam_core::pipelined::{Completion, Op, StreamingCam};
use dsp_cam_core::unit::{CamUnit, SearchResult};
use dsp_cam_sim::Clocked;
use dsp_cam_workload::TraceOp;

use crate::failover::{
    FailoverState, FailoverStats, ReplicaEpoch, ReplicationConfig, ShardFault, ShardHealth,
    ShedPolicy,
};
use crate::ring::HashRing;

/// Whether a [`CamError`] is an infrastructure failure (the dispatch
/// machinery died) rather than an admission verdict — infra failures
/// are retryable through a rebuilt pool; admission errors are final.
pub(crate) fn infra_error(err: &CamError) -> bool {
    matches!(
        err,
        CamError::DispatchTimeout { .. } | CamError::WorkerPoolPoisoned { .. }
    )
}

/// Cluster-level operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// Only one live migration may be in flight at a time.
    MigrationInProgress,
    /// The requested slot does not exist on the ring.
    SlotOutOfRange {
        /// Requested slot.
        slot: usize,
        /// Ring size.
        slots: usize,
    },
    /// The requested shard does not exist.
    ShardOutOfRange {
        /// Requested shard.
        shard: usize,
        /// Cluster size.
        shards: usize,
    },
    /// The slot already lives on the requested destination.
    AlreadyHome {
        /// Requested slot.
        slot: usize,
        /// Its current (and requested) home.
        shard: usize,
    },
    /// The destination could not admit the migrating slot's contents.
    Admission(CamError),
    /// The shard is failed and its write retry budget is exhausted —
    /// the operation was shed by admission control.
    Overloaded {
        /// The overloaded shard.
        shard: usize,
    },
    /// The shard is failed (stalled or rebuilding) and cannot take part
    /// in a migration right now.
    ShardUnavailable {
        /// The unavailable shard.
        shard: usize,
    },
    /// The operation needs [`CamCluster::enable_failover`] first.
    FailoverDisabled,
    /// No migration window is open to abort.
    NoMigration,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::MigrationInProgress => {
                write!(f, "a migration is already in flight")
            }
            ClusterError::SlotOutOfRange { slot, slots } => {
                write!(f, "slot {slot} out of range (ring has {slots})")
            }
            ClusterError::ShardOutOfRange { shard, shards } => {
                write!(f, "shard {shard} out of range (cluster has {shards})")
            }
            ClusterError::AlreadyHome { slot, shard } => {
                write!(f, "slot {slot} already lives on shard {shard}")
            }
            ClusterError::Admission(err) => {
                write!(f, "destination rejected the migrating slot: {err}")
            }
            ClusterError::Overloaded { shard } => {
                write!(f, "shard {shard} is failed and its retry budget is spent")
            }
            ClusterError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} is failed and cannot join a migration")
            }
            ClusterError::FailoverDisabled => {
                write!(f, "enable_failover() has not been called on this cluster")
            }
            ClusterError::NoMigration => {
                write!(f, "no migration window is open")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Cluster-level tallies — the counters the equivalence suite compares
/// at quiescence (shard-local counters legitimately differ between a
/// migrated and an unmigrated cluster; these do not).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterCounters {
    /// Point searches routed.
    pub searches: u64,
    /// Keys presented across streamed searches.
    pub stream_keys: u64,
    /// Updates routed.
    pub updates: u64,
    /// Deletes routed (mix deletes and evictions alike).
    pub deletes: u64,
    /// Matching search completions (point and streamed, frozen included).
    pub search_hits: u64,
    /// Deletes that invalidated an entry.
    pub delete_hits: u64,
    /// Updates rejected at admission.
    pub update_rejections: u64,
    /// Searches answered by a frozen migration replica.
    pub frozen_reads: u64,
    /// Migrations driven to cutover.
    pub migrations_completed: u64,
}

/// An in-flight slot migration (at most one at a time).
#[derive(Debug)]
struct Migration {
    slot: usize,
    source: usize,
    dest: usize,
    /// Read-only replica serving the slot's searches for the window.
    frozen: CamUnit,
    /// Keys the window wrote through to the destination; their searches
    /// bypass the frozen replica for read-your-writes.
    dirty: HashSet<u64>,
    /// The slot's words staged into the destination at freeze — deleted
    /// from the source at cutover.
    moved: Vec<u64>,
    /// Copy-engine progress: words the background copy has pushed so
    /// far, advancing one per cluster tick. The words are staged into
    /// the destination's write buffer at freeze (atomic admission), but
    /// cutover additionally waits for this bandwidth-bound cursor — a
    /// read-your-writes flush may apply them physically early, yet the
    /// engine still occupies the window for `moved.len()` cycles.
    copied: usize,
    stall_cycles: u64,
    /// Destination journal mark taken *after* the staged words were
    /// journalled: entries at or past it are the in-window redirected
    /// writes — exactly what a rollback must re-apply to the source.
    dest_journal_mark: u64,
}

/// The routing decision for one trace record: shard sub-issues (with
/// the original key positions of streamed searches) plus any
/// frozen-replica answers, position-stamped.
#[derive(Debug)]
pub struct RecordPlan {
    /// `(shard, op, original key positions)` — positions are empty for
    /// write-path ops (they carry one implicit position).
    pub subs: Vec<(usize, Op, Vec<usize>)>,
    /// `(original position, result)` answered synchronously from the
    /// frozen replica.
    pub frozen: Vec<(usize, SearchResult)>,
    /// `(original position, result)` answered synchronously from a
    /// replica epoch because the home shard is failed — stale but never
    /// silent (degraded reads).
    pub degraded: Vec<(usize, SearchResult)>,
}

/// N CAM shards behind a consistent-hash ring, with live migration.
///
/// Two driving modes share one routing brain ([`CamCluster::plan`]):
///
/// * the **transactional** API ([`CamCluster::search`] /
///   [`CamCluster::update`] / [`CamCluster::delete`] /
///   [`CamCluster::search_stream`]) issues through the owning shard's
///   streaming pipeline and ticks the whole cluster in lockstep until
///   the completion retires — what the equivalence suite drives;
/// * the **ingest** loop ([`crate::ingest::replay_cluster`]) plans each
///   record, issues sub-ops cycle-accurately against per-shard issue
///   slots, and harvests completions in retire order.
///
/// The two modes must not be interleaved on one cluster instance: the
/// transactional methods assume every prior completion has been
/// harvested.
#[derive(Debug)]
pub struct CamCluster {
    shards: Vec<StreamingCam>,
    ring: HashRing,
    migration: Option<Migration>,
    counters: ClusterCounters,
    /// Stall cycles of each completed migration, in completion order.
    stall_log: Vec<u64>,
    key_mask: u64,
    cycle: u64,
    /// Replica epochs, shard health and shed policy — `None` until
    /// [`CamCluster::enable_failover`].
    failover: Option<FailoverState>,
}

impl CamCluster {
    /// Build `shards` identically-configured shards behind a ring of
    /// `slots` virtual slots.
    ///
    /// # Errors
    ///
    /// Propagates the unit-level [`ConfigError`]s.
    ///
    /// # Panics
    ///
    /// Panics when `shards` or `slots` is zero.
    pub fn new(config: UnitConfig, shards: usize, slots: usize) -> Result<Self, ConfigError> {
        assert!(shards > 0, "a cluster needs at least one shard");
        let shards = (0..shards)
            .map(|_| CamUnit::new(config).map(StreamingCam::from_unit))
            .collect::<Result<Vec<_>, _>>()?;
        let ring = HashRing::new(slots, shards.len());
        Ok(CamCluster {
            // `data_width` is validated at 1..=48 by `CamUnit::new`
            // above, so the shift cannot overflow.
            key_mask: (1u64 << config.block.cell.data_width) - 1,
            shards,
            ring,
            migration: None,
            counters: ClusterCounters::default(),
            stall_log: Vec::new(),
            cycle: 0,
            failover: None,
        })
    }

    /// Turn on fault tolerance: every shard gets an acknowledged-write
    /// journal and a seed replica epoch, searches transparently fail
    /// over to the newest epoch while a shard is down, and crashed
    /// shards rebuild as `epoch + journal` with zero lost acknowledged
    /// writes. Call at quiescence (typically right after construction
    /// or prefill), before driving load.
    ///
    /// # Panics
    ///
    /// Panics when `replication.replicas` or
    /// `replication.journal_capacity` is zero.
    pub fn enable_failover(&mut self, replication: ReplicationConfig) {
        assert!(
            replication.replicas >= 1,
            "failover needs at least one replica epoch per shard"
        );
        assert!(
            replication.journal_capacity >= 1,
            "failover needs a non-zero journal watermark"
        );
        let mut fo = FailoverState::new(replication, self.shards.len());
        for (shard, cam) in self.shards.iter_mut().enumerate() {
            cam.enable_write_journal(replication.journal_capacity);
            fo.replicas[shard].push_back(ReplicaEpoch {
                cycle: self.cycle,
                unit: cam.unit().rehydrate(),
            });
        }
        self.failover = Some(fo);
    }

    /// Replace the overload admission-control policy (no-op until
    /// [`CamCluster::enable_failover`]).
    pub fn set_shed_policy(&mut self, policy: ShedPolicy) {
        if let Some(fo) = &mut self.failover {
            fo.shed = policy;
        }
    }

    /// The active shed policy (the default one when failover is off).
    #[must_use]
    pub fn shed_policy(&self) -> ShedPolicy {
        self.failover
            .as_ref()
            .map_or_else(ShedPolicy::default, |fo| fo.shed)
    }

    /// Whether [`CamCluster::enable_failover`] has been called.
    #[must_use]
    pub fn failover_enabled(&self) -> bool {
        self.failover.is_some()
    }

    /// Failure and recovery tallies, if failover is enabled.
    #[must_use]
    pub fn failover_stats(&self) -> Option<&FailoverStats> {
        self.failover.as_ref().map(|fo| &fo.stats)
    }

    /// Whether shard `i` is serving normally (always true when failover
    /// is disabled — there is nothing to detect failures with).
    #[must_use]
    pub fn shard_healthy(&self, i: usize) -> bool {
        self.failover
            .as_ref()
            .is_none_or(|fo| matches!(fo.health[i], ShardHealth::Healthy))
    }

    /// Whether any shard is currently failed.
    #[must_use]
    pub fn any_unhealthy(&self) -> bool {
        self.failover
            .as_ref()
            .is_some_and(|fo| fo.health.iter().any(|h| !matches!(h, ShardHealth::Healthy)))
    }

    /// Repartition every shard into `m` replicated groups (flushes each
    /// shard's write buffer first, exactly like the unit-level call).
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError::GroupCount`] when `m` does not divide
    /// the per-shard block count.
    pub fn configure_groups(&mut self, m: usize) -> Result<(), ConfigError> {
        for cam in &mut self.shards {
            cam.unit_mut().configure_groups(m)?;
        }
        Ok(())
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The routing ring (slot assignments included).
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Cluster-level tallies.
    #[must_use]
    pub fn counters(&self) -> &ClusterCounters {
        &self.counters
    }

    /// Stall cycles of each completed migration, in completion order —
    /// the migration-stall histogram's raw samples.
    #[must_use]
    pub fn migration_stalls(&self) -> &[u64] {
        &self.stall_log
    }

    /// The cluster's lockstep cycle count.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether a migration window is open.
    #[must_use]
    pub fn migration_in_progress(&self) -> bool {
        self.migration.is_some()
    }

    /// Borrow shard `i`'s streaming pipeline (the ingest loop's issue
    /// and harvest port).
    pub fn shard_mut(&mut self, i: usize) -> &mut StreamingCam {
        &mut self.shards[i]
    }

    /// Borrow shard `i` immutably.
    #[must_use]
    pub fn shard(&self, i: usize) -> &StreamingCam {
        &self.shards[i]
    }

    /// Advance every shard one cycle in lockstep (idle shards drain
    /// their write buffers and scrub, exactly like single-unit
    /// streaming), then fire migration cutover if the destination has
    /// caught up.
    pub fn tick(&mut self) {
        for cam in &mut self.shards {
            cam.tick();
        }
        self.cycle += 1;
        if let Some(m) = &mut self.migration {
            if m.copied < m.moved.len() {
                m.copied += 1;
            }
        }
        self.step_failover();
        self.try_cutover();
    }

    /// Advance failover state one cycle: expire stalls, reinstall
    /// finished rebuilds, and refresh replica epochs at clean ticks
    /// (cadence hits, post-rebuild, or journal over its watermark).
    fn step_failover(&mut self) {
        let Some(fo) = &mut self.failover else { return };
        let now = self.cycle;
        let interval = fo.replication.refresh_interval;
        if interval > 0 && now.is_multiple_of(interval) {
            for flag in &mut fo.due_refresh {
                *flag = true;
            }
        }
        for shard in 0..self.shards.len() {
            match fo.health[shard] {
                ShardHealth::Stalled { since, until } if now >= until => {
                    fo.health[shard] = ShardHealth::Healthy;
                    fo.stats.recovery_ticks.push(now - since);
                }
                ShardHealth::Rebuilding { since, ready_at } if now >= ready_at => {
                    let job = fo.rebuilds[shard]
                        .take()
                        .expect("rebuilding shard has a job");
                    // Nothing is in flight: the crash purged the pipes
                    // and the closed issue port kept them empty.
                    let _dead = self.shards[shard].replace_unit(job.unit);
                    fo.health[shard] = ShardHealth::Healthy;
                    fo.stats.rebuilds_completed += 1;
                    fo.stats.recovery_ticks.push(now - since);
                    // Epoch the rebuilt contents right away so the next
                    // failure does not replay this outage's journal.
                    fo.due_refresh[shard] = true;
                }
                _ => {}
            }
        }
        for shard in 0..self.shards.len() {
            let (clean, over) = self.shards[shard]
                .write_journal()
                .map_or((false, false), |j| {
                    (j.unacked_len() == 0, j.over_watermark())
                });
            if matches!(fo.health[shard], ShardHealth::Healthy)
                && clean
                && (fo.due_refresh[shard] || over)
            {
                fo.replicas[shard].push_back(ReplicaEpoch {
                    cycle: now,
                    unit: self.shards[shard].unit().rehydrate(),
                });
                while fo.replicas[shard].len() > fo.replication.replicas {
                    fo.replicas[shard].pop_front();
                }
                self.shards[shard]
                    .write_journal_mut()
                    .expect("journal enabled with failover")
                    .truncate();
                fo.due_refresh[shard] = false;
            }
        }
    }

    /// Tick until every pipeline is empty, every write buffer drained,
    /// every shard healthy again, and any open migration window has
    /// reached cutover — cluster quiescence.
    pub fn quiesce(&mut self) {
        while self.migration.is_some()
            || self.any_unhealthy()
            || self
                .shards
                .iter()
                .any(|cam| cam.in_flight() || cam.buffer_depth() > 0)
        {
            self.tick();
        }
    }

    /// Store `words` across the cluster through the transaction-level
    /// unit path (each word to its home shard), flushed physical — the
    /// prefill hook, identical on a reference cluster.
    ///
    /// # Errors
    ///
    /// Propagates the first admission error.
    pub fn prefill(&mut self, words: &[u64]) -> Result<(), CamError> {
        let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); self.shards.len()];
        for &w in words {
            per_shard[self.ring.shard_of(w & self.key_mask)].push(w);
        }
        for (shard, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            self.shards[shard].unit_mut().update(&batch)?;
            self.shards[shard].unit_mut().flush_write_buffer();
            // Keep `epoch + journal` covering the prefill when failover
            // was enabled before it.
            self.shards[shard].journal_direct(JournalOp::Update(batch));
        }
        Ok(())
    }

    /// The shard currently *serving writes* for masked key `k`: the
    /// ring owner, except that an open migration window redirects its
    /// slot to the destination.
    fn home_of(&self, k: u64) -> usize {
        let slot = self.ring.slot_of(k);
        match &self.migration {
            Some(m) if m.slot == slot => m.dest,
            _ => self.ring.assignment(slot),
        }
    }

    /// Whether a search for masked key `k` is served by the frozen
    /// replica (migrating slot, not dirtied by an in-window write).
    fn frozen_serves(&self, k: u64) -> bool {
        match &self.migration {
            Some(m) => self.ring.slot_of(k) == m.slot && !m.dirty.contains(&k),
            None => false,
        }
    }

    /// Route one trace record: answer frozen-replica reads now, plan
    /// shard sub-issues for everything else, and charge the routing
    /// tallies. Write-path ops on a migrating slot are redirected to
    /// the destination and their keys marked dirty (over-marking is
    /// safe: the destination's staged replica answers un-written slot
    /// keys identically to the frozen one).
    pub fn plan(&mut self, op: &TraceOp) -> RecordPlan {
        let mut plan = RecordPlan {
            subs: Vec::new(),
            frozen: Vec::new(),
            degraded: Vec::new(),
        };
        match op {
            TraceOp::Search(key) => {
                self.counters.searches += 1;
                let k = key & self.key_mask;
                if self.frozen_serves(k) {
                    let result = self.frozen_search(*key);
                    plan.frozen.push((0, result));
                } else {
                    let shard = self.home_of(k);
                    if self.shard_healthy(shard) {
                        plan.subs.push((shard, Op::Search(*key), vec![0]));
                    } else {
                        let result = self.degraded_search(shard, *key);
                        plan.degraded.push((0, result));
                    }
                }
            }
            TraceOp::SearchStream(keys) => {
                self.counters.stream_keys += keys.len() as u64;
                let mut per_shard: Vec<(Vec<u64>, Vec<usize>)> =
                    vec![(Vec::new(), Vec::new()); self.shards.len()];
                for (pos, &key) in keys.iter().enumerate() {
                    let k = key & self.key_mask;
                    if self.frozen_serves(k) {
                        let result = self.frozen_search(key);
                        plan.frozen.push((pos, result));
                    } else {
                        let shard = self.home_of(k);
                        if self.shard_healthy(shard) {
                            per_shard[shard].0.push(key);
                            per_shard[shard].1.push(pos);
                        } else {
                            let result = self.degraded_search(shard, key);
                            plan.degraded.push((pos, result));
                        }
                    }
                }
                for (shard, (batch, positions)) in per_shard.into_iter().enumerate() {
                    if !batch.is_empty() {
                        plan.subs.push((shard, Op::SearchStream(batch), positions));
                    }
                }
            }
            TraceOp::Update(word) => {
                self.counters.updates += 1;
                let k = word & self.key_mask;
                let shard = self.home_of(k);
                self.mark_dirty(k);
                plan.subs.push((shard, Op::Update(vec![*word]), Vec::new()));
            }
            TraceOp::Delete { key, .. } => {
                self.counters.deletes += 1;
                let k = key & self.key_mask;
                let shard = self.home_of(k);
                self.mark_dirty(k);
                plan.subs.push((shard, Op::Delete(*key), Vec::new()));
            }
        }
        plan
    }

    /// Answer a search from the frozen replica, charging the hit
    /// tallies (the replica's own counters are discarded at cutover).
    fn frozen_search(&mut self, key: u64) -> SearchResult {
        self.counters.frozen_reads += 1;
        let result = self
            .migration
            .as_mut()
            .expect("frozen_serves checked")
            .frozen
            .search(key);
        self.counters.search_hits += u64::from(result.is_match());
        result
    }

    /// Answer a search from the failed home shard's newest replica
    /// epoch — stale but never silent. Charges the hit tallies like any
    /// other answered search.
    fn degraded_search(&mut self, shard: usize, key: u64) -> SearchResult {
        let fo = self
            .failover
            .as_mut()
            .expect("an unhealthy shard implies failover is enabled");
        fo.stats.degraded_reads += 1;
        let result = fo.replicas[shard]
            .back_mut()
            .expect("replica epochs are seeded at enablement")
            .unit
            .search(key);
        self.counters.search_hits += u64::from(result.is_match());
        result
    }

    /// Answer a queued read sub-operation from its failed shard's
    /// newest replica epoch — the issue-time degraded path for reads
    /// stranded in the ingest queue when their shard failed after
    /// planning. `None` when `op` is a write (the caller defers those
    /// instead).
    pub fn degraded_answer(&mut self, shard: usize, op: &Op) -> Option<Vec<SearchResult>> {
        match op {
            Op::Search(key) => Some(vec![self.degraded_search(shard, *key)]),
            Op::SearchStream(keys) | Op::SearchMulti(keys) => Some(
                keys.iter()
                    .map(|&k| self.degraded_search(shard, k))
                    .collect(),
            ),
            _ => None,
        }
    }

    fn mark_dirty(&mut self, k: u64) {
        if let Some(m) = &mut self.migration {
            if self.ring.slot_of(k) == m.slot {
                m.dirty.insert(k);
            }
        }
    }

    /// Charge retire-side tallies for one harvested completion — shared
    /// by the transactional methods and the ingest harvest.
    pub fn tally(&mut self, done: &Completion) {
        match done {
            Completion::Search(result) => {
                self.counters.search_hits += u64::from(result.is_match());
            }
            Completion::SearchMulti(Ok(results)) | Completion::SearchStream(results) => {
                self.counters.search_hits += results.iter().filter(|r| r.is_match()).count() as u64;
            }
            Completion::SearchMulti(Err(_)) => {}
            Completion::Update(result) => {
                // Infrastructure failures (dispatch timeout, poisoned
                // pool) are retryable, not admission verdicts — the
                // failover path re-issues them instead of tallying a
                // rejection.
                self.counters.update_rejections +=
                    u64::from(result.as_ref().is_err_and(|e| !infra_error(e)));
            }
            Completion::Delete(hit) => {
                self.counters.delete_hits += u64::from(*hit);
            }
        }
    }

    /// Issue `op` on `shard` and tick the cluster in lockstep until the
    /// completion retires — the transactional execution core. Assumes
    /// every earlier completion has been harvested.
    fn run_on(&mut self, shard: usize, op: Op) -> Completion {
        let mut op = op;
        loop {
            match self.shards[shard].issue(op) {
                Ok(()) => break,
                Err(back) => {
                    op = back;
                    self.tick();
                }
            }
        }
        loop {
            self.tick();
            let mut retired = self.shards[shard].drain_retired();
            if let Some((_, done)) = retired.pop() {
                debug_assert!(
                    retired.is_empty(),
                    "transactional shard retires one at a time"
                );
                return done;
            }
        }
    }

    /// Re-resolve the serving shard of a single-key sub-operation
    /// against the *current* topology — queued sub-issues survive a
    /// migration rollback by re-routing at issue time. `None` for
    /// multi-key ops (their plan-time split stays valid: windows only
    /// open against an empty sub-queue).
    #[must_use]
    pub fn resolve_shard(&self, op: &Op) -> Option<usize> {
        let key = match op {
            Op::Update(words) if words.len() == 1 => words[0],
            Op::Delete(key) | Op::Search(key) => *key,
            _ => return None,
        };
        Some(self.home_of(key & self.key_mask))
    }

    /// Tick until `shard` serves again, bounded by the shed policy's
    /// total backoff window.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Overloaded`] when the shard is still down after
    /// the full backoff window.
    fn await_healthy(&mut self, shard: usize) -> Result<(), ClusterError> {
        if self.shard_healthy(shard) {
            return Ok(());
        }
        let shed = self.shed_policy();
        // Total wait = sum of the exponential backoffs the ingest path
        // would have spent: base * (2^(max_retries+1) - 1), saturated.
        let max_wait = shed
            .base_backoff_ticks
            .saturating_mul((1u64 << shed.max_retries.min(32)).saturating_mul(2) - 1);
        for _ in 0..max_wait {
            self.tick();
            if self.shard_healthy(shard) {
                return Ok(());
            }
        }
        Err(ClusterError::Overloaded { shard })
    }

    /// Point search for `key`, routed (and migration- and
    /// failure-aware) — transactional: retires before returning.
    /// Searches on a failed shard are answered from its newest replica
    /// epoch (degraded, possibly stale, never silent).
    pub fn search(&mut self, key: u64) -> SearchResult {
        let plan = self.plan(&TraceOp::Search(key));
        if let Some((_, result)) = plan.frozen.into_iter().next() {
            return result;
        }
        if let Some((_, result)) = plan.degraded.into_iter().next() {
            return result;
        }
        let (shard, op, _) = plan.subs.into_iter().next().expect("routed");
        let done = self.run_on(shard, op);
        self.tally(&done);
        match done {
            Completion::Search(result) => result,
            other => unreachable!("search retired {other:?}"),
        }
    }

    /// Streamed search fan-out: keys split per serving shard (plus the
    /// frozen replica), sub-batches issued per shard, results
    /// reassembled in presented-key order — transactional.
    pub fn search_stream(&mut self, keys: &[u64]) -> Vec<SearchResult> {
        let plan = self.plan(&TraceOp::SearchStream(keys.to_vec()));
        let mut results: Vec<Option<SearchResult>> = vec![None; keys.len()];
        for (pos, result) in plan.frozen {
            results[pos] = Some(result);
        }
        for (pos, result) in plan.degraded {
            results[pos] = Some(result);
        }
        for (shard, op, positions) in plan.subs {
            let done = self.run_on(shard, op);
            self.tally(&done);
            match done {
                Completion::SearchStream(sub) => {
                    debug_assert_eq!(sub.len(), positions.len());
                    for (pos, result) in positions.into_iter().zip(sub) {
                        results[pos] = Some(result);
                    }
                }
                other => unreachable!("stream retired {other:?}"),
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every key answered"))
            .collect()
    }

    /// Store one word on its home shard — transactional. A write aimed
    /// at a failed shard waits (ticking the cluster) through the shed
    /// policy's backoff window for the shard to recover; an
    /// infrastructure failure in the shard's dispatch pool is detected,
    /// triggers recovery, and the write is retried once through the
    /// rebuilt shard.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Admission`] wrapping the shard's admission
    /// verdict ([`CamError::Full`], [`CamError::ValueTooWide`]), or
    /// [`ClusterError::Overloaded`] when the home shard stayed down
    /// past the backoff window.
    pub fn update(&mut self, word: u64) -> Result<(), ClusterError> {
        let plan = self.plan(&TraceOp::Update(word));
        let (mut shard, mut op, _) = plan.subs.into_iter().next().expect("routed");
        let mut infra_retried = false;
        loop {
            self.await_healthy(shard)?;
            // A rollback while we waited may have re-homed the key.
            let routed = self.resolve_shard(&op).unwrap_or(shard);
            if routed != shard {
                shard = routed;
                continue;
            }
            let done = self.run_on(shard, op);
            self.tally(&done);
            match done {
                Completion::Update(Ok(())) => return Ok(()),
                Completion::Update(Err(err)) if infra_error(&err) && !infra_retried => {
                    // The dispatch machinery died under the op, not the
                    // admission check: recover the shard (under
                    // failover) and re-issue exactly once.
                    infra_retried = true;
                    self.note_dispatch_failure(shard);
                    op = Op::Update(vec![word]);
                }
                Completion::Update(Err(err)) => return Err(ClusterError::Admission(err)),
                other => unreachable!("update retired {other:?}"),
            }
        }
    }

    /// Delete the first stored match of `key` on its serving shard —
    /// transactional. Returns whether the delete hit. Waits out a
    /// failed home shard exactly like [`CamCluster::update`].
    ///
    /// # Errors
    ///
    /// [`ClusterError::Overloaded`] when the home shard stayed down
    /// past the shed policy's backoff window.
    pub fn delete(&mut self, key: u64) -> Result<bool, ClusterError> {
        let plan = self.plan(&TraceOp::Delete {
            key,
            eviction: false,
        });
        let (mut shard, op, _) = plan.subs.into_iter().next().expect("routed");
        loop {
            self.await_healthy(shard)?;
            let routed = self.resolve_shard(&op).unwrap_or(shard);
            if routed != shard {
                shard = routed;
                continue;
            }
            let done = self.run_on(shard, op);
            self.tally(&done);
            return match done {
                Completion::Delete(hit) => Ok(hit),
                other => unreachable!("delete retired {other:?}"),
            };
        }
    }

    /// Open a live migration window moving `slot` to shard `dest`.
    ///
    /// Quiesces the source shard (stall cycles counted), freezes a
    /// read-only replica over the `rehydrate()` snapshot path, and
    /// stages the slot's stored words into the destination's write
    /// buffer (draining on its idle ticks). Queries keep flowing the
    /// whole time; cutover fires from [`CamCluster::tick`] once the
    /// destination catches up.
    ///
    /// # Errors
    ///
    /// [`ClusterError::MigrationInProgress`] when a window is open,
    /// range errors for bad `slot`/`dest`, [`ClusterError::AlreadyHome`]
    /// when the slot already lives on `dest`,
    /// [`ClusterError::ShardUnavailable`] when either participant is
    /// failed, and [`ClusterError::Admission`] when the destination
    /// cannot hold the slot (the cluster is left exactly as it was).
    pub fn begin_migration(&mut self, slot: usize, dest: usize) -> Result<(), ClusterError> {
        if self.migration.is_some() {
            return Err(ClusterError::MigrationInProgress);
        }
        if slot >= self.ring.num_slots() {
            return Err(ClusterError::SlotOutOfRange {
                slot,
                slots: self.ring.num_slots(),
            });
        }
        if dest >= self.shards.len() {
            return Err(ClusterError::ShardOutOfRange {
                shard: dest,
                shards: self.shards.len(),
            });
        }
        let source = self.ring.assignment(slot);
        if source == dest {
            return Err(ClusterError::AlreadyHome { slot, shard: dest });
        }
        if !self.shard_healthy(source) {
            return Err(ClusterError::ShardUnavailable { shard: source });
        }
        if !self.shard_healthy(dest) {
            return Err(ClusterError::ShardUnavailable { shard: dest });
        }
        // Quiesce the source so the frozen replica is a true snapshot
        // (full cluster ticks: failover bookkeeping keeps advancing).
        let mut stall_cycles = 0u64;
        while self.shards[source].in_flight() || self.shards[source].buffer_depth() > 0 {
            self.tick();
            stall_cycles += 1;
        }
        let frozen = self.shards[source].unit().rehydrate();
        let moved: Vec<u64> = frozen
            .stored_words()
            .into_iter()
            .filter(|&w| self.ring.slot_of(w & self.key_mask) == slot)
            .collect();
        // Stage the replica into the destination's write buffer one
        // word per staged op — the background copy trickles out on the
        // destination's idle ticks at its drain rate, holding the window
        // open for the whole transfer instead of collapsing it into one
        // drained batch. Capture is O(words) on the destination's port,
        // charged as migration stall.
        for (staged, &w) in moved.iter().enumerate() {
            if let Err(err) = self.shards[dest].unit_mut().update(&[w]) {
                // Unstage what went in, so a rejected migration leaves
                // the cluster exactly as it was.
                for &undo in &moved[..staged] {
                    self.shards[dest].unit_mut().delete_first(undo);
                }
                return Err(ClusterError::Admission(err));
            }
        }
        stall_cycles += moved.len() as u64;
        // Journal the staged words on the destination, then mark the
        // log: everything past the mark is an in-window redirected
        // write — the rollback slice.
        for &w in &moved {
            self.shards[dest].journal_direct(JournalOp::Update(vec![w]));
        }
        let dest_journal_mark = self.shards[dest]
            .write_journal()
            .map_or(0, dsp_cam_core::journal::OpJournal::next_seq);
        self.migration = Some(Migration {
            slot,
            source,
            dest,
            frozen,
            dirty: HashSet::new(),
            moved,
            copied: 0,
            stall_cycles,
            dest_journal_mark,
        });
        Ok(())
    }

    /// Abort the open migration window and roll back cleanly to
    /// source-serving: the destination is scrubbed of the slot's words
    /// (staged and redirected alike), in-window redirected writes are
    /// re-applied to the source in acknowledgement order (no
    /// acknowledged write is lost), the ring is untouched (it never
    /// flipped), and the frozen replica is dropped.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoMigration`] when no window is open.
    pub fn abort_migration(&mut self) -> Result<(), ClusterError> {
        if self.migration.is_none() {
            return Err(ClusterError::NoMigration);
        }
        self.rollback_migration(true);
        Ok(())
    }

    /// Roll the open window back to source-serving. With `dest_alive`,
    /// the destination unit is scrubbed of the slot's words; a dead
    /// destination skips the scrub (its rebuild filter drops the
    /// slot's words instead). Either way the redirected in-window
    /// writes — the destination journal's slice past the window mark,
    /// filtered to the slot — are re-applied to the source.
    fn rollback_migration(&mut self, dest_alive: bool) {
        let m = self.migration.take().expect("caller checked the window");
        let window: Vec<JournalOp> =
            self.shards[m.dest]
                .write_journal()
                .map_or_else(Vec::new, |journal| {
                    journal
                        .acked_since(m.dest_journal_mark)
                        .filter_map(|entry| match &entry.op {
                            JournalOp::Update(words) => {
                                let slot_words: Vec<u64> = words
                                    .iter()
                                    .copied()
                                    .filter(|&w| self.ring.slot_of(w & self.key_mask) == m.slot)
                                    .collect();
                                (!slot_words.is_empty()).then_some(JournalOp::Update(slot_words))
                            }
                            JournalOp::Delete(key) => (self.ring.slot_of(key & self.key_mask)
                                == m.slot)
                                .then_some(JournalOp::Delete(*key)),
                        })
                        .collect()
                });
        if dest_alive {
            // Every slot-keyed word on the destination belongs to the
            // window: the slot never lived there before it opened.
            self.shards[m.dest].unit_mut().flush_write_buffer();
            let stored = self.shards[m.dest].unit().stored_words();
            for w in stored {
                if self.ring.slot_of(w & self.key_mask) == m.slot {
                    self.shards[m.dest].unit_mut().delete_first(w);
                    self.shards[m.dest].journal_direct(JournalOp::Delete(w));
                }
            }
        }
        for op in &window {
            self.apply_direct(m.source, op);
        }
        if let Some(fo) = &mut self.failover {
            fo.stats.migration_aborts += 1;
        }
        // The dirty set and frozen replica drop with `m`; the ring was
        // never flipped, so the source serves the slot again.
    }

    /// Apply a journal effect to shard `i`'s current logical contents —
    /// its live unit, or its in-flight rebuild when the shard is down —
    /// and journal it so `epoch + journal` keeps holding.
    fn apply_direct(&mut self, i: usize, op: &JournalOp) {
        let rebuild = self
            .failover
            .as_mut()
            .and_then(|fo| fo.rebuilds[i].as_mut());
        let unit = match rebuild {
            Some(job) => &mut job.unit,
            None => self.shards[i].unit_mut(),
        };
        // Admission cannot refuse here in practice: the slot's words
        // fit the source before the window opened, and redirected
        // in-window writes were sized for one shard's headroom.
        let _applied = op.replay(unit);
        unit.flush_write_buffer();
        self.shards[i].journal_direct(op.clone());
    }

    /// Inject a shard failure — the chaos hook. `Crash` and
    /// `PoisonPool` lose the shard's contents and in-flight operations
    /// and start an `epoch + journal` rebuild; `Stall` closes the issue
    /// port for a bounded number of ticks (contents survive). A fault
    /// aimed at an already-failed shard is absorbed.
    ///
    /// # Errors
    ///
    /// [`ClusterError::ShardOutOfRange`] for a bad shard index and
    /// [`ClusterError::FailoverDisabled`] before
    /// [`CamCluster::enable_failover`].
    pub fn inject_shard_fault(
        &mut self,
        shard: usize,
        fault: ShardFault,
    ) -> Result<(), ClusterError> {
        if shard >= self.shards.len() {
            return Err(ClusterError::ShardOutOfRange {
                shard,
                shards: self.shards.len(),
            });
        }
        if self.failover.is_none() {
            return Err(ClusterError::FailoverDisabled);
        }
        if !self.shard_healthy(shard) {
            return Ok(());
        }
        let fo = self.failover.as_mut().expect("checked above");
        fo.stats.failures_detected += 1;
        match fault {
            ShardFault::Stall { ticks } => {
                fo.health[shard] = ShardHealth::Stalled {
                    since: self.cycle,
                    until: self.cycle + ticks.max(1),
                };
            }
            ShardFault::Crash | ShardFault::PoisonPool => self.crash_shard(shard),
        }
        Ok(())
    }

    /// A dispatch-path infrastructure failure surfaced on `shard` (a
    /// [`CamError::DispatchTimeout`] or
    /// [`CamError::WorkerPoolPoisoned`] completion): the shard's
    /// surviving contents are untrusted, so with failover enabled this
    /// counts as a detected crash and a rebuild starts. Returns whether
    /// recovery was started — `false` when failover is disabled or the
    /// shard is already down, in which case the caller simply retries
    /// through the shard's auto-rebuilt pool.
    pub fn note_dispatch_failure(&mut self, shard: usize) -> bool {
        if self.failover.is_none() || !self.shard_healthy(shard) {
            return false;
        }
        self.failover
            .as_mut()
            .expect("checked above")
            .stats
            .failures_detected += 1;
        self.crash_shard(shard);
        true
    }

    /// Lose shard `shard`: purge its pipes (unacknowledged writes are
    /// the client's to retry), roll back an open migration window
    /// targeting it, reset the dead unit, and start restoring
    /// `newest epoch + acknowledged journal` at one word per tick.
    fn crash_shard(&mut self, shard: usize) {
        let now = self.cycle;
        self.shards[shard].purge_in_flight();
        let mut purge_slot = None;
        if let Some(m) = &self.migration {
            if m.dest == shard {
                // The destination died inside the window: roll back to
                // source-serving. The dead unit is about to be reset,
                // so the slot scrub happens in the rebuild filter.
                purge_slot = Some(m.slot);
                self.rollback_migration(false);
            }
            // A dying *source* keeps the window open: the frozen
            // replica keeps answering and cutover waits on the rebuild.
        }
        let mut rebuilt = {
            let fo = self.failover.as_ref().expect("crash implies failover");
            fo.replicas[shard]
                .back()
                .expect("replica epochs are seeded at enablement")
                .unit
                .rehydrate()
        };
        let epoch_words = rebuilt.stored_words().len();
        let replayed = self.shards[shard]
            .write_journal()
            .expect("journal enabled with failover")
            .replay_onto(&mut rebuilt);
        if let Some(slot) = purge_slot {
            rebuilt.flush_write_buffer();
            for w in rebuilt.stored_words() {
                if self.ring.slot_of(w & self.key_mask) == slot {
                    rebuilt.delete_first(w);
                }
            }
        }
        self.shards[shard].unit_mut().reset();
        // Restore bandwidth model: one word per tick for the epoch plus
        // one per journal entry replayed.
        let ready_at = now + 1 + epoch_words as u64 + replayed as u64;
        let fo = self.failover.as_mut().expect("crash implies failover");
        fo.rebuilds[shard] = Some(crate::failover::RebuildJob { unit: rebuilt });
        fo.health[shard] = ShardHealth::Rebuilding {
            since: now,
            ready_at,
        };
    }

    /// Fire cutover once the copy engine has pushed every moved word
    /// (one per tick) *and* the destination's write buffer has fully
    /// drained the staged slot plus any in-window writes: delete the
    /// moved words from the source, flip the ring slot, drop the frozen
    /// replica. The cursor condition keeps the window open for at least
    /// `moved.len()` cycles even when a read-your-writes search flush
    /// applies the whole staged batch physically in one shot.
    fn try_cutover(&mut self) {
        let drained = match &self.migration {
            Some(m) => {
                m.copied >= m.moved.len()
                    && self.shards[m.dest].buffer_depth() == 0
                    // A failed participant defers cutover: the window
                    // stays open until the shard recovers (or a
                    // destination crash rolls the window back).
                    && self.shard_healthy(m.source)
                    && self.shard_healthy(m.dest)
            }
            None => return,
        };
        if !drained {
            return;
        }
        let m = self.migration.take().expect("checked above");
        for &w in &m.moved {
            self.shards[m.source].unit_mut().delete_first(w);
            self.shards[m.source].journal_direct(JournalOp::Delete(w));
        }
        self.ring.assign(m.slot, m.dest);
        self.counters.migrations_completed += 1;
        self.stall_log.push(m.stall_cycles + m.moved.len() as u64);
    }

    /// FNV-1a digest over the sorted multiset of words stored across
    /// all shards — the cluster's content fingerprint. Meaningful at
    /// quiescence ([`CamCluster::quiesce`]): staged write-buffer ops
    /// and an open migration window (which doubles the migrating slot)
    /// are not part of the logical contents.
    #[must_use]
    pub fn content_digest(&self) -> u64 {
        const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut words: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|cam| cam.unit().stored_words())
            .collect();
        words.sort_unstable();
        let mut hash = OFFSET;
        let mut mix = |value: u64| {
            for byte in value.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        mix(words.len() as u64);
        for &w in &words {
            mix(w);
        }
        hash
    }

    /// Replicate a read-only snapshot of every shard — the multi-shard
    /// search fan-out port. Take at quiescence; the replicas are
    /// decoupled from the live cluster (reads never stall ingest).
    #[must_use]
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            replicas: self
                .shards
                .iter()
                .map(|cam| cam.unit().rehydrate())
                .collect(),
            ring: self.ring.clone(),
            key_mask: self.key_mask,
        }
    }
}

/// Read-only replicated snapshot of a whole cluster: one rehydrated
/// unit per shard plus the routing ring frozen at snapshot time.
/// Searches fan out to the owning replica and reassemble in presented
/// order; the live cluster is never touched.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    replicas: Vec<CamUnit>,
    ring: HashRing,
    key_mask: u64,
}

impl ClusterSnapshot {
    /// Point search against the owning replica.
    pub fn search(&mut self, key: u64) -> SearchResult {
        let shard = self.ring.shard_of(key & self.key_mask);
        self.replicas[shard].search(key)
    }

    /// Fan a batch of keys out across the replicas (one streamed
    /// sub-batch per shard) and reassemble the results in presented-key
    /// order.
    pub fn search_fan_out(&mut self, keys: &[u64]) -> Vec<SearchResult> {
        let mut per_shard: Vec<(Vec<u64>, Vec<usize>)> =
            vec![(Vec::new(), Vec::new()); self.replicas.len()];
        for (pos, &key) in keys.iter().enumerate() {
            let shard = self.ring.shard_of(key & self.key_mask);
            per_shard[shard].0.push(key);
            per_shard[shard].1.push(pos);
        }
        let mut results: Vec<Option<SearchResult>> = vec![None; keys.len()];
        for (shard, (batch, positions)) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let sub = self.replicas[shard].search_stream(&batch);
            for (pos, result) in positions.into_iter().zip(sub) {
                results[pos] = Some(result);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every key answered"))
            .collect()
    }
}
