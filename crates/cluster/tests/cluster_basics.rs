//! Deterministic cluster behaviour: routing, live migration (frozen
//! reads, read-your-writes, cutover, content preservation), snapshot
//! fan-out, the ingest replay loop's zero-dropped-query invariant, and
//! the migration admission errors.

use dsp_cam_cluster::{replay_cluster, CamCluster, ClusterError, IngestConfig, MigrationPlan};
use dsp_cam_core::prelude::*;
use dsp_cam_workload::{generate, Arrival, OpMix, WorkloadConfig};

fn config(workers: usize) -> UnitConfig {
    UnitConfig::builder()
        .data_width(12)
        .block_size(8)
        .num_blocks(4)
        .bus_width(64)
        .workers(workers)
        .write_buffer(WriteBufferConfig {
            capacity: 64,
            drain_per_tick: 1,
            bypass: false,
        })
        .build()
        .unwrap()
}

fn cluster(shards: usize) -> CamCluster {
    CamCluster::new(config(1), shards, 16).unwrap()
}

#[test]
fn routing_stores_and_finds_keys_across_shards() {
    let mut cluster = cluster(4);
    let keys: Vec<u64> = (1..=64).collect();
    cluster.prefill(&keys).unwrap();
    cluster.quiesce();

    // Prefill actually spread across shards.
    let populated = (0..4)
        .filter(|&i| !cluster.shard(i).unit().stored_words().is_empty())
        .count();
    assert!(populated >= 3, "only {populated} of 4 shards populated");

    for &key in &keys {
        assert!(cluster.search(key).is_match(), "prefilled key {key} lost");
    }
    assert!(!cluster.search(999).is_match());
    cluster.update(999).unwrap();
    assert!(cluster.search(999).is_match());
    assert!(cluster.delete(999).unwrap());
    cluster.quiesce();
    assert!(!cluster.search(999).is_match());

    let results = cluster.search_stream(&[1, 999, 2, 64, 3]);
    let matches: Vec<bool> = results.iter().map(SearchResult::is_match).collect();
    assert_eq!(matches, vec![true, false, true, true, true]);

    let counters = cluster.counters();
    assert_eq!(counters.searches, keys.len() as u64 + 3);
    assert_eq!(counters.stream_keys, 5);
    assert_eq!(counters.updates, 1);
    assert_eq!(counters.deletes, 1);
    assert_eq!(counters.delete_hits, 1);
    assert_eq!(counters.update_rejections, 0);
}

#[test]
fn migration_preserves_content_and_reassigns_the_slot() {
    let mut cluster = cluster(4);
    let keys: Vec<u64> = (1..=48).collect();
    cluster.prefill(&keys).unwrap();
    cluster.quiesce();
    let digest_before = cluster.content_digest();

    let slot = cluster.ring().slot_of(7);
    let source = cluster.ring().assignment(slot);
    let dest = (source + 1) % 4;
    cluster.begin_migration(slot, dest).unwrap();
    cluster.quiesce();

    assert!(!cluster.migration_in_progress());
    assert_eq!(cluster.ring().assignment(slot), dest);
    assert_eq!(cluster.counters().migrations_completed, 1);
    assert_eq!(cluster.migration_stalls().len(), 1);
    assert_eq!(
        cluster.content_digest(),
        digest_before,
        "migration must not change the cluster's logical contents"
    );
    // The source shard no longer holds any key of the moved slot.
    let leftovers = cluster
        .shard(source)
        .unit()
        .stored_words()
        .into_iter()
        .filter(|&w| cluster.ring().slot_of(w) == slot)
        .count();
    assert_eq!(leftovers, 0, "cutover left {leftovers} words on the source");
    for &key in &keys {
        assert!(
            cluster.search(key).is_match(),
            "key {key} lost in migration"
        );
    }
}

#[test]
fn frozen_replica_serves_the_window_with_read_your_writes() {
    let mut cluster = cluster(2);
    let keys: Vec<u64> = (1..=32).collect();
    cluster.prefill(&keys).unwrap();
    cluster.quiesce();

    // A slot with at least one prefilled key.
    let probe = *keys
        .iter()
        .find(|&&k| {
            let slot = cluster.ring().slot_of(k);
            keys.iter()
                .filter(|&&other| cluster.ring().slot_of(other) == slot)
                .count()
                >= 2
        })
        .expect("some slot holds two keys");
    let slot = cluster.ring().slot_of(probe);
    let dest = 1 - cluster.ring().assignment(slot);
    cluster.begin_migration(slot, dest).unwrap();
    assert!(cluster.migration_in_progress(), "window should be open");

    // An untouched slot key reads from the frozen replica.
    assert!(cluster.search(probe).is_match());
    assert!(cluster.counters().frozen_reads >= 1);

    // An in-window write to the slot is visible immediately (dirty path,
    // destination write buffer read-your-writes)...
    let sibling = keys
        .iter()
        .find(|&&k| k != probe && cluster.ring().slot_of(k) == slot)
        .copied()
        .expect("slot had two keys");
    assert!(
        cluster.migration_in_progress(),
        "writes keep the window open"
    );
    assert!(
        cluster.delete(sibling).unwrap(),
        "in-window delete must hit"
    );
    if cluster.migration_in_progress() {
        let frozen_before = cluster.counters().frozen_reads;
        assert!(
            !cluster.search(sibling).is_match(),
            "dirty key must bypass the frozen replica"
        );
        assert_eq!(
            cluster.counters().frozen_reads,
            frozen_before,
            "dirty key answered by the destination, not the replica"
        );
    }

    cluster.quiesce();
    assert!(
        !cluster.search(sibling).is_match(),
        "delete survives cutover"
    );
    assert!(cluster.search(probe).is_match(), "untouched key survives");
}

#[test]
fn snapshot_fan_out_matches_the_live_cluster() {
    let mut cluster = cluster(4);
    let keys: Vec<u64> = (10..=40).collect();
    cluster.prefill(&keys).unwrap();
    cluster.quiesce();

    let mut snapshot = cluster.snapshot();
    let probes: Vec<u64> = (0..64).collect();
    let fanned = snapshot.search_fan_out(&probes);
    for (&key, result) in probes.iter().zip(&fanned) {
        assert_eq!(
            result.is_match(),
            cluster.search(key).is_match(),
            "snapshot and live cluster disagree on {key}"
        );
        assert_eq!(
            snapshot.search(key).is_match(),
            result.is_match(),
            "snapshot point and fan-out disagree on {key}"
        );
    }
}

#[test]
fn ingest_replay_never_drops_a_query_across_a_migration() {
    let trace = generate(&WorkloadConfig {
        seed: 0xC1,
        ops: 600,
        key_space: 4096,
        zipf_s: 0.9,
        mix: OpMix::WRITE_HEAVY,
        stream_batch: 4,
        arrival: Arrival::Bursty {
            mean_burst: 8,
            idle_ticks: 4,
        },
        churn_per_mille: 100,
        prefill: 64,
        max_live: Some(200),
        eviction_min_gap: 1,
    })
    .unwrap();

    // Roomier shards than the routing tests: a write-heavy 600-op trace
    // with a 200-entry live watermark needs headroom under Zipf skew.
    let shard_config = UnitConfig::builder()
        .data_width(12)
        .block_size(8)
        .num_blocks(16)
        .bus_width(64)
        .write_buffer(WriteBufferConfig {
            capacity: 64,
            drain_per_tick: 1,
            bypass: false,
        })
        .build()
        .unwrap();
    let mut cluster = CamCluster::new(shard_config, 4, 16).unwrap();
    let slot = cluster.ring().slot_of(trace.prefill_words()[0]);
    let dest = (cluster.ring().assignment(slot) + 1) % 4;
    let outcome = replay_cluster(
        &trace,
        &mut cluster,
        &IngestConfig {
            queue_capacity: 32,
            migrate: Some(MigrationPlan {
                after_records: 200,
                slot,
                dest,
            }),
            faults: None,
        },
    )
    .unwrap();

    assert_eq!(outcome.dropped, 0, "zero-dropped-query invariant");
    assert!(outcome.issued > 0 && outcome.completions == outcome.issued);
    assert_eq!(outcome.migration_stalls.len(), 1, "one migration completed");
    assert_eq!(cluster.ring().assignment(slot), dest);
    assert!(outcome.ticks > 0 && outcome.peak_queue_depth > 0);
    let sampled: usize = (0..4).map(|i| outcome.per_shard_latencies[i].len()).sum();
    assert_eq!(
        sampled as u64, outcome.completions,
        "every completion leaves a latency sample"
    );
    let counts = trace.counts();
    let counters = cluster.counters();
    assert_eq!(counters.searches, counts.searches);
    assert_eq!(counters.stream_keys, counts.stream_keys);
    assert_eq!(counters.updates, counts.updates);
    assert_eq!(counters.deletes, counts.mix_deletes + counts.evictions);
    assert_eq!(counters.migrations_completed, 1);
}

#[test]
fn migration_admission_errors_leave_the_cluster_untouched() {
    let mut cluster = cluster(2);
    cluster.prefill(&[1, 2, 3]).unwrap();
    cluster.quiesce();

    assert_eq!(
        cluster.begin_migration(99, 1),
        Err(ClusterError::SlotOutOfRange {
            slot: 99,
            slots: 16
        })
    );
    assert_eq!(
        cluster.begin_migration(0, 7),
        Err(ClusterError::ShardOutOfRange {
            shard: 7,
            shards: 2
        })
    );
    let home = cluster.ring().assignment(3);
    assert_eq!(
        cluster.begin_migration(3, home),
        Err(ClusterError::AlreadyHome {
            slot: 3,
            shard: home
        })
    );
    assert!(!cluster.migration_in_progress());

    cluster.begin_migration(3, 1 - home).unwrap();
    assert_eq!(
        cluster.begin_migration(4, 1),
        Err(ClusterError::MigrationInProgress),
        "one window at a time"
    );
    cluster.quiesce();
    assert_eq!(cluster.counters().migrations_completed, 1);
}
