//! Cluster fault-tolerance proofs.
//!
//! The chaos property: ANY seeded [`ClusterFaultPlan`] — crashes,
//! stalls and pool poisonings, optionally landing inside a live
//! migration window — converges to the fault-free twin: identical
//! content digest at quiescence, zero lost acknowledged writes, zero
//! shed writes under a generous retry policy, every presented search
//! answered (availability 1.0), across all three fidelity tiers.
//!
//! The deterministic half pins each recovery mechanism on its own:
//! `epoch + journal` crash rebuilds, stall expiry, overload shedding,
//! migration abort/rollback (graceful and destination-crash), the
//! source-crash-keeps-the-window-open path, the failure-aware
//! `begin_migration` edges, and the `DispatchTimeout` bounded-retry
//! regression (a write whose dispatch pool dies is re-issued through
//! the rebuilt shard, not lost or miscounted as a rejection).

use dsp_cam_cluster::{
    replay_cluster, CamCluster, ClusterError, ClusterFaultPlan, IngestConfig, MigrationPlan,
    PlannedFault, ReplicationConfig, ShardFault, ShedPolicy,
};
use dsp_cam_core::prelude::*;
use dsp_cam_workload::{generate, Arrival, OpMix, Trace, WorkloadConfig};
use proptest::prelude::*;

/// Roomy shards (192 words per shard): the chaos suite must keep clear
/// of admission `Full` so the only divergence a fault could cause is a
/// lost or duplicated write — exactly what the digest comparison pins.
fn shard_config(fidelity: FidelityMode) -> UnitConfig {
    UnitConfig::builder()
        .data_width(12)
        .block_size(8)
        .num_blocks(24)
        .bus_width(64)
        .fidelity(fidelity)
        .write_buffer(WriteBufferConfig {
            capacity: 64,
            drain_per_tick: 1,
            bypass: false,
        })
        .build()
        .unwrap()
}

fn replication() -> ReplicationConfig {
    ReplicationConfig {
        replicas: 2,
        refresh_interval: 64,
        journal_capacity: 512,
    }
}

/// A retry policy generous enough that no outage the fault plans can
/// produce ever sheds a write — the zero-lost-writes arm of the chaos
/// property needs every deferred write to eventually land.
fn patient_policy() -> ShedPolicy {
    ShedPolicy {
        base_backoff_ticks: 2,
        max_retries: 24,
        retry_budget: 1 << 40,
    }
}

fn chaos_trace(seed: u64) -> Trace {
    generate(&WorkloadConfig {
        seed,
        ops: 240,
        key_space: 1024,
        zipf_s: 0.9,
        mix: OpMix::WRITE_HEAVY,
        stream_batch: 4,
        arrival: Arrival::Bursty {
            mean_burst: 6,
            idle_ticks: 3,
        },
        churn_per_mille: 80,
        prefill: 48,
        max_live: Some(96),
        eviction_min_gap: 1,
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Chaos convergence: a faulted, failover-enabled cluster ends at
    /// the same logical contents as a fault-free twin running the
    /// identical trace (and migration plan), with nothing dropped,
    /// nothing shed, and every search answered.
    #[test]
    fn chaos_fault_plans_converge_to_the_fault_free_twin(
        fault_seed in 1u64..(1 << 48),
        trace_seed in 1u64..(1 << 48),
        shards in 2usize..5,
        fault_count in 1usize..5,
        migrate in 0usize..2,
    ) {
        let trace = chaos_trace(trace_seed);
        for fidelity in [FidelityMode::BitAccurate, FidelityMode::Fast, FidelityMode::Turbo] {
            let mut faulty = CamCluster::new(shard_config(fidelity), shards, 16).unwrap();
            faulty.enable_failover(replication());
            faulty.set_shed_policy(patient_policy());
            let plan = (migrate == 1).then(|| {
                let slot = faulty.ring().slot_of(trace.prefill_words()[0]);
                MigrationPlan {
                    after_records: trace.records.len() / 3,
                    slot,
                    dest: (faulty.ring().assignment(slot) + 1) % shards,
                }
            });
            let faults = ClusterFaultPlan::seeded(fault_seed, shards, 600, fault_count);
            let outcome = replay_cluster(
                &trace,
                &mut faulty,
                &IngestConfig {
                    queue_capacity: 32,
                    migrate: plan,
                    faults: Some(faults),
                },
            )
            .unwrap();

            let mut twin = CamCluster::new(shard_config(fidelity), shards, 16).unwrap();
            let reference = replay_cluster(
                &trace,
                &mut twin,
                &IngestConfig {
                    queue_capacity: 32,
                    migrate: plan,
                    faults: None,
                },
            )
            .unwrap();

            prop_assert_eq!(reference.dropped, 0);
            prop_assert_eq!(
                outcome.dropped, 0,
                "zero-dropped-query invariant under faults ({:?})", fidelity
            );
            prop_assert_eq!(
                outcome.shed_writes, 0,
                "a patient policy must never shed ({:?})", fidelity
            );
            prop_assert_eq!(outcome.infra_failures, 0);
            prop_assert!(
                outcome.availability() >= 0.99,
                "availability {} < 0.99 ({:?})", outcome.availability(), fidelity
            );
            prop_assert!(outcome.presented > 0);
            prop_assert_eq!(
                faulty.content_digest(), twin.content_digest(),
                "acknowledged writes lost or duplicated under faults ({:?})", fidelity
            );
        }
    }
}

/// Build a failover cluster with `shards` shards, prefilled and
/// quiescent.
fn failover_cluster(shards: usize, prefill: &[u64]) -> CamCluster {
    let mut cluster = CamCluster::new(shard_config(FidelityMode::BitAccurate), shards, 16).unwrap();
    cluster.enable_failover(replication());
    cluster.prefill(prefill).unwrap();
    cluster.quiesce();
    cluster
}

/// A reference cluster (no failover, no faults) holding exactly
/// `words`, for digest comparison.
fn digest_of(words: &[u64]) -> u64 {
    let mut reference = CamCluster::new(shard_config(FidelityMode::BitAccurate), 2, 16).unwrap();
    reference.prefill(words).unwrap();
    reference.quiesce();
    reference.content_digest()
}

#[test]
fn crash_rebuild_restores_every_acknowledged_write() {
    let prefill: Vec<u64> = (1..=40).collect();
    let mut cluster = failover_cluster(2, &prefill);

    // Acknowledged post-epoch writes: five stores and one delete, all
    // retired before the crash.
    for w in 100..=104u64 {
        cluster.update(w).unwrap();
    }
    assert!(cluster.delete(3).unwrap());
    cluster.quiesce();

    let victim = cluster.ring().assignment(cluster.ring().slot_of(100));
    cluster
        .inject_shard_fault(victim, ShardFault::Crash)
        .unwrap();
    assert!(!cluster.shard_healthy(victim));
    assert!(cluster.any_unhealthy());

    // Reads stay answered while the rebuild is in flight (stale is
    // fine; silent is not).
    let _ = cluster.search(100);
    let stats = cluster.failover_stats().unwrap();
    assert_eq!(stats.failures_detected, 1);
    assert!(stats.degraded_reads >= 1);

    cluster.quiesce();
    assert!(cluster.shard_healthy(victim));
    let stats = cluster.failover_stats().unwrap();
    assert_eq!(stats.rebuilds_completed, 1);
    assert_eq!(stats.recovery_ticks.len(), 1);
    assert!(stats.recovery_ticks[0] > 0);

    // Zero lost acknowledged writes: every surviving prefill key, every
    // post-epoch store, and the delete all hold after the rebuild.
    for &w in &prefill {
        assert_eq!(
            cluster.search(w).is_match(),
            w != 3,
            "prefilled key {w} wrong after rebuild"
        );
    }
    for w in 100..=104u64 {
        assert!(cluster.search(w).is_match(), "acked write {w} lost");
    }
    let expected: Vec<u64> = prefill
        .iter()
        .copied()
        .filter(|&w| w != 3)
        .chain(100..=104)
        .collect();
    assert_eq!(cluster.content_digest(), digest_of(&expected));
}

#[test]
fn stall_closes_the_issue_port_then_expires() {
    let prefill: Vec<u64> = (1..=16).collect();
    let mut cluster = failover_cluster(2, &prefill);
    cluster
        .inject_shard_fault(0, ShardFault::Stall { ticks: 10 })
        .unwrap();
    assert!(!cluster.shard_healthy(0));

    // A second fault on the already-failed shard is absorbed.
    cluster.inject_shard_fault(0, ShardFault::Crash).unwrap();
    let stats = cluster.failover_stats().unwrap();
    assert_eq!(stats.failures_detected, 1, "absorbed faults do not count");

    // A write to the stalled shard waits out the stall and lands —
    // contents survived (no rebuild, no journal replay).
    let key = (0..4096u64)
        .find(|&k| cluster.ring().assignment(cluster.ring().slot_of(k)) == 0)
        .unwrap();
    cluster.update(key).unwrap();
    assert!(cluster.shard_healthy(0), "the write waited past expiry");
    let stats = cluster.failover_stats().unwrap();
    assert_eq!(stats.rebuilds_completed, 0, "a stall is not a crash");
    assert_eq!(stats.recovery_ticks, vec![10]);
    cluster.quiesce();
    assert!(cluster.search(key).is_match());
    for &w in &prefill {
        assert!(cluster.search(w).is_match(), "stall must not lose {w}");
    }
}

#[test]
fn overload_sheds_the_transactional_write_past_the_backoff_window() {
    let mut cluster = failover_cluster(2, &[1, 2, 3]);
    cluster.set_shed_policy(ShedPolicy {
        base_backoff_ticks: 1,
        max_retries: 2,
        retry_budget: 64,
    });
    cluster
        .inject_shard_fault(0, ShardFault::Stall { ticks: 400 })
        .unwrap();
    let key = (0..4096u64)
        .find(|&k| cluster.ring().assignment(cluster.ring().slot_of(k)) == 0)
        .unwrap();
    // Backoff window = 1 * (2^3 - 1) = 7 ticks, far short of the stall.
    assert_eq!(
        cluster.update(key),
        Err(ClusterError::Overloaded { shard: 0 })
    );
    // Reads on the overloaded shard still answer (degraded).
    let _ = cluster.search(key);
    assert!(cluster.failover_stats().unwrap().degraded_reads >= 1);

    cluster.quiesce();
    cluster.update(key).unwrap();
    cluster.quiesce();
    assert!(cluster.search(key).is_match());
}

/// Prefilled two-shard cluster plus the densest migrating slot — in-
/// window transactional ops tick the cluster, so the fixture needs a
/// slot wide enough that the window survives them.
fn migration_fixture() -> (CamCluster, Vec<u64>, usize, usize, usize) {
    let prefill: Vec<u64> = (1..=128).collect();
    let cluster = failover_cluster(2, &prefill);
    let slot = (0..16)
        .max_by_key(|&s| {
            prefill
                .iter()
                .filter(|&&w| cluster.ring().slot_of(w) == s)
                .count()
        })
        .unwrap();
    let source = cluster.ring().assignment(slot);
    let dest = 1 - source;
    let staged = prefill
        .iter()
        .filter(|&&w| cluster.ring().slot_of(w) == slot)
        .count();
    assert!(staged >= 6, "fixture slot too thin ({staged} words)");
    (cluster, prefill, slot, source, dest)
}

/// A key of `slot` that was not prefilled.
fn fresh_slot_key(cluster: &CamCluster, slot: usize) -> u64 {
    (200..4096u64)
        .find(|&k| cluster.ring().slot_of(k) == slot)
        .expect("the slot covers some fresh key")
}

#[test]
fn abort_rolls_the_window_back_to_source_serving() {
    let (mut cluster, prefill, slot, source, dest) = migration_fixture();
    assert_eq!(
        cluster.abort_migration(),
        Err(ClusterError::NoMigration),
        "nothing to abort before a window opens"
    );

    cluster.begin_migration(slot, dest).unwrap();
    assert!(cluster.migration_in_progress());

    // In-window redirected writes: one store of a fresh slot key, one
    // delete of a staged one — both acknowledged against the dest.
    let fresh = fresh_slot_key(&cluster, slot);
    cluster.update(fresh).unwrap();
    let staged_victim = prefill
        .iter()
        .copied()
        .find(|&w| cluster.ring().slot_of(w) == slot)
        .unwrap();
    assert!(cluster.delete(staged_victim).unwrap());
    assert!(
        cluster.migration_in_progress(),
        "the fixture slot must keep the window open across two ops"
    );

    cluster.abort_migration().unwrap();
    assert!(!cluster.migration_in_progress());
    assert_eq!(
        cluster.ring().assignment(slot),
        source,
        "the ring never flipped"
    );
    assert_eq!(cluster.failover_stats().unwrap().migration_aborts, 1);
    cluster.quiesce();

    // No acknowledged in-window write was lost in the rollback...
    assert!(cluster.search(fresh).is_match(), "redirected store lost");
    assert!(
        !cluster.search(staged_victim).is_match(),
        "redirected delete lost"
    );
    for &w in &prefill {
        assert_eq!(cluster.search(w).is_match(), w != staged_victim);
    }
    // ...the destination was scrubbed of the slot...
    let leftovers = cluster
        .shard(dest)
        .unit()
        .stored_words()
        .into_iter()
        .filter(|&w| cluster.ring().slot_of(w) == slot)
        .count();
    assert_eq!(leftovers, 0, "{leftovers} slot words left on the dest");
    // ...and the logical contents match a cluster that never migrated.
    let expected: Vec<u64> = prefill
        .iter()
        .copied()
        .filter(|&w| w != staged_victim)
        .chain([fresh])
        .collect();
    assert_eq!(cluster.content_digest(), digest_of(&expected));
    assert_eq!(cluster.counters().migrations_completed, 0);
}

#[test]
fn dest_crash_inside_the_window_rolls_back_without_losing_acked_writes() {
    let (mut cluster, prefill, slot, source, dest) = migration_fixture();
    cluster.begin_migration(slot, dest).unwrap();
    let fresh = fresh_slot_key(&cluster, slot);
    cluster.update(fresh).unwrap();
    assert!(cluster.migration_in_progress());

    cluster.inject_shard_fault(dest, ShardFault::Crash).unwrap();
    assert!(
        !cluster.migration_in_progress(),
        "a dead destination aborts the window"
    );
    assert_eq!(cluster.ring().assignment(slot), source);
    assert_eq!(cluster.failover_stats().unwrap().migration_aborts, 1);

    cluster.quiesce();
    assert_eq!(cluster.failover_stats().unwrap().rebuilds_completed, 1);
    assert!(cluster.search(fresh).is_match(), "redirected store lost");
    for &w in &prefill {
        assert!(cluster.search(w).is_match(), "key {w} lost in rollback");
    }
    let leftovers = cluster
        .shard(dest)
        .unit()
        .stored_words()
        .into_iter()
        .filter(|&w| cluster.ring().slot_of(w) == slot)
        .count();
    assert_eq!(leftovers, 0, "rebuild must drop the aborted slot's words");
    let expected: Vec<u64> = prefill.iter().copied().chain([fresh]).collect();
    assert_eq!(cluster.content_digest(), digest_of(&expected));
}

#[test]
fn source_crash_keeps_the_window_open_until_recovery_then_cuts_over() {
    let (mut cluster, prefill, slot, _source, dest) = migration_fixture();
    let digest_before = cluster.content_digest();
    cluster.begin_migration(slot, dest).unwrap();
    let probe = prefill
        .iter()
        .copied()
        .find(|&w| cluster.ring().slot_of(w) == slot)
        .unwrap();
    let source = cluster.ring().assignment(slot);
    cluster
        .inject_shard_fault(source, ShardFault::Crash)
        .unwrap();
    assert!(
        cluster.migration_in_progress(),
        "a dying source must not abort the window"
    );
    // The frozen replica keeps serving the migrating slot.
    let frozen_before = cluster.counters().frozen_reads;
    assert!(cluster.search(probe).is_match());
    assert!(cluster.counters().frozen_reads > frozen_before);

    cluster.quiesce();
    assert!(!cluster.migration_in_progress());
    assert_eq!(cluster.ring().assignment(slot), dest, "cutover completed");
    assert_eq!(cluster.counters().migrations_completed, 1);
    assert_eq!(cluster.failover_stats().unwrap().migration_aborts, 0);
    for &w in &prefill {
        assert!(cluster.search(w).is_match(), "key {w} lost");
    }
    assert_eq!(cluster.content_digest(), digest_before);
}

#[test]
fn begin_migration_rejects_failed_participants() {
    let mut cluster = failover_cluster(2, &(1..=32).collect::<Vec<u64>>());
    let slot_on_0 = (0..16)
        .find(|&s| cluster.ring().assignment(s) == 0)
        .unwrap();
    let slot_on_1 = (0..16)
        .find(|&s| cluster.ring().assignment(s) == 1)
        .unwrap();

    cluster
        .inject_shard_fault(0, ShardFault::PoisonPool)
        .unwrap();
    assert_eq!(
        cluster.begin_migration(slot_on_0, 1),
        Err(ClusterError::ShardUnavailable { shard: 0 }),
        "failed source"
    );
    assert_eq!(
        cluster.begin_migration(slot_on_1, 0),
        Err(ClusterError::ShardUnavailable { shard: 0 }),
        "failed destination"
    );
    assert!(!cluster.migration_in_progress());

    cluster.quiesce();
    cluster.begin_migration(slot_on_0, 1).unwrap();
    cluster.quiesce();
    assert_eq!(cluster.ring().assignment(slot_on_0), 1);
    assert_eq!(cluster.counters().migrations_completed, 1);
}

#[test]
fn transactional_update_retries_through_the_rebuilt_shard_after_dispatch_timeout() {
    let config = UnitConfig::builder()
        .data_width(12)
        .block_size(8)
        .num_blocks(16)
        .bus_width(64)
        .workers(2)
        .dispatch_deadline_ms(50)
        .build()
        .unwrap();
    let mut cluster = CamCluster::new(config, 2, 16).unwrap();
    cluster.configure_groups(2).unwrap();
    cluster.enable_failover(replication());
    let prefill: Vec<u64> = (1..=24).collect();
    cluster.prefill(&prefill).unwrap();
    cluster.quiesce();

    let key = 1000u64;
    let victim = cluster.ring().assignment(cluster.ring().slot_of(key));
    // Arm the one-shot stall fuse: the next pooled update dispatch on
    // the victim sleeps past the 50 ms deadline and surfaces
    // DispatchTimeout, abandoning the shard's blocks.
    cluster
        .shard_mut(victim)
        .unit_mut()
        .inject_fault(FaultSite::PoolStall { ms: 250 });

    // The write still lands: the timeout is detected, the shard
    // rebuilds as epoch + journal, and the op re-issues exactly once.
    cluster.update(key).unwrap();
    let stats = cluster.failover_stats().unwrap();
    assert_eq!(stats.failures_detected, 1);
    assert_eq!(stats.rebuilds_completed, 1);
    assert_eq!(
        cluster.counters().update_rejections,
        0,
        "an infrastructure failure is not an admission rejection"
    );

    cluster.quiesce();
    assert!(cluster.search(key).is_match(), "retried write lost");
    for &w in &prefill {
        assert!(cluster.search(w).is_match(), "key {w} lost in the rebuild");
    }
}

/// The S1 regression at replay level: before the bounded-retry fix, a
/// `DispatchTimeout` completion was tallied as an update rejection and
/// its word silently lost — the digest comparison against a fault-free
/// twin fails on the pre-fix code.
#[test]
fn replay_retries_dispatch_timeout_writes_through_the_rebuilt_pool() {
    let config = UnitConfig::builder()
        .data_width(12)
        .block_size(8)
        .num_blocks(16)
        .bus_width(64)
        .workers(2)
        .dispatch_deadline_ms(50)
        .build()
        .unwrap();
    // Prefill must be empty: the stall fuse is armed before the replay,
    // and the prefill path would trip it early.
    let trace = generate(&WorkloadConfig {
        seed: 0xD15_7A11,
        ops: 120,
        key_space: 512,
        zipf_s: 0.9,
        mix: OpMix::WRITE_HEAVY,
        stream_batch: 4,
        arrival: Arrival::BackToBack,
        churn_per_mille: 80,
        prefill: 0,
        max_live: Some(40),
        eviction_min_gap: 1,
    })
    .unwrap();

    let mut faulty = CamCluster::new(config, 2, 16).unwrap();
    faulty.configure_groups(2).unwrap();
    faulty.enable_failover(replication());
    for i in 0..2 {
        faulty
            .shard_mut(i)
            .unit_mut()
            .inject_fault(FaultSite::PoolStall { ms: 250 });
    }
    let outcome = replay_cluster(&trace, &mut faulty, &IngestConfig::default()).unwrap();

    let mut twin = CamCluster::new(config, 2, 16).unwrap();
    twin.configure_groups(2).unwrap();
    let reference = replay_cluster(&trace, &mut twin, &IngestConfig::default()).unwrap();

    assert!(outcome.infra_retries >= 1, "a stalled dispatch must retry");
    assert_eq!(outcome.infra_failures, 0, "the bounded retry succeeds");
    assert_eq!(outcome.dropped, 0);
    assert!(outcome.rebuilds_completed >= 1);
    assert_eq!(
        outcome.update_rejections, reference.update_rejections,
        "infrastructure failures must not be counted as rejections"
    );
    assert!((outcome.availability() - 1.0).abs() < f64::EPSILON);
    assert_eq!(
        faulty.content_digest(),
        twin.content_digest(),
        "the timed-out write was lost instead of retried"
    );
}

#[test]
fn prolonged_outage_sheds_writes_but_answers_every_read() {
    let trace = generate(&WorkloadConfig {
        seed: 0x0B5E_55ED,
        ops: 200,
        key_space: 1024,
        zipf_s: 0.9,
        mix: OpMix::WRITE_HEAVY,
        stream_batch: 4,
        arrival: Arrival::BackToBack,
        churn_per_mille: 80,
        prefill: 32,
        max_live: Some(80),
        eviction_min_gap: 1,
    })
    .unwrap();
    let mut cluster = CamCluster::new(shard_config(FidelityMode::BitAccurate), 2, 16).unwrap();
    cluster.enable_failover(replication());
    cluster.set_shed_policy(ShedPolicy {
        base_backoff_ticks: 1,
        max_retries: 2,
        retry_budget: 8,
    });
    let faults = ClusterFaultPlan::from_faults(vec![PlannedFault {
        at_tick: 10,
        shard: 0,
        fault: ShardFault::Stall { ticks: 2000 },
    }]);
    let outcome = replay_cluster(
        &trace,
        &mut cluster,
        &IngestConfig {
            queue_capacity: 32,
            migrate: None,
            faults: Some(faults),
        },
    )
    .unwrap();

    assert!(
        outcome.shed_writes > 0,
        "a tight policy under a long outage sheds"
    );
    assert!(outcome.write_retries > 0);
    assert_eq!(outcome.dropped, 0, "shedding is counted, never a drop");
    assert!(outcome.degraded_answers > 0, "reads kept flowing degraded");
    let availability = outcome.availability();
    assert!(
        availability < 1.0 && availability > 0.5,
        "expected partial write loss, got availability {availability}"
    );
    assert!(cluster.shard_healthy(0), "quiescence waited out the stall");
}

#[test]
fn reads_on_a_crashed_shard_are_answered_from_the_replica_epoch() {
    let trace = generate(&WorkloadConfig {
        seed: 0xDE6_4ADE,
        ops: 300,
        key_space: 1024,
        zipf_s: 0.9,
        mix: OpMix::READ_HEAVY,
        stream_batch: 4,
        arrival: Arrival::BackToBack,
        churn_per_mille: 50,
        prefill: 128,
        max_live: Some(160),
        eviction_min_gap: 1,
    })
    .unwrap();
    let mut faulty = CamCluster::new(shard_config(FidelityMode::Turbo), 2, 16).unwrap();
    faulty.enable_failover(replication());
    let faults = ClusterFaultPlan::from_faults(vec![PlannedFault {
        at_tick: 40,
        shard: 0,
        fault: ShardFault::Crash,
    }]);
    let outcome = replay_cluster(
        &trace,
        &mut faulty,
        &IngestConfig {
            queue_capacity: 32,
            migrate: None,
            faults: Some(faults),
        },
    )
    .unwrap();

    assert_eq!(outcome.failures_detected, 1);
    assert_eq!(outcome.rebuilds_completed, 1);
    assert!(
        outcome.degraded_answers > 0,
        "reads during the rebuild answer from the replica epoch"
    );
    assert_eq!(
        outcome.degraded_latencies.len(),
        outcome.degraded_answers as usize
    );
    assert_eq!(
        outcome.shed_writes, 0,
        "the default policy outlasts a rebuild"
    );
    assert_eq!(outcome.dropped, 0);
    assert!((outcome.availability() - 1.0).abs() < f64::EPSILON);
    assert!(!outcome.recovery_ticks.is_empty());

    let mut twin = CamCluster::new(shard_config(FidelityMode::Turbo), 2, 16).unwrap();
    let reference = replay_cluster(&trace, &mut twin, &IngestConfig::default()).unwrap();
    assert_eq!(reference.dropped, 0);
    assert_eq!(
        faulty.content_digest(),
        twin.content_digest(),
        "the crash must not change the quiescent contents"
    );
}
