//! The migration observational-equivalence property: a cluster that
//! live-migrates a slot mid-traffic must be indistinguishable — per-op
//! results, cluster counters at quiescence, content digest, and
//! replicated snapshot answers — from a reference cluster running the
//! identical op stream with no migration, across all three fidelity
//! tiers and worker counts {1, 4}. One arm also rehydrates the
//! *destination* shard mid-window (snapshot/restore during migration),
//! which must preserve the staged slot and change nothing observable.

use dsp_cam_cluster::CamCluster;
use dsp_cam_core::prelude::*;
use proptest::prelude::*;

/// A random cluster operation applied identically to both arms.
#[derive(Debug, Clone)]
enum ClusterOp {
    Search(u64),
    /// Multi-key fan-out (splits per shard, reassembles by position).
    SearchStream(Vec<u64>),
    Update(u64),
    Delete(u64),
    /// Idle cluster cycles: write buffers drain, an open window may
    /// reach cutover mid-stream.
    Idle(usize),
}

fn cluster_op() -> impl Strategy<Value = ClusterOp> {
    // Narrow key domain so the migrating slot's keys are hit constantly
    // — in-window frozen reads, dirty writes, and deletes of staged
    // words all occur within a single short sequence.
    let limit = 48u64;
    prop_oneof![
        4 => (0..limit).prop_map(ClusterOp::Search),
        3 => proptest::collection::vec(0..limit, 1..8).prop_map(ClusterOp::SearchStream),
        4 => (0..limit).prop_map(ClusterOp::Update),
        3 => (0..limit).prop_map(ClusterOp::Delete),
        2 => (1usize..6).prop_map(ClusterOp::Idle),
    ]
}

fn build(fidelity: FidelityMode, workers: usize) -> CamCluster {
    let config = UnitConfig::builder()
        .data_width(12)
        .block_size(8)
        // Capacity headroom: in-window the destination holds the staged
        // slot *and* its own keys, and admission errors must still match
        // the reference arm exactly.
        .num_blocks(8)
        .bus_width(64)
        .fidelity(fidelity)
        .workers(workers)
        .write_buffer(WriteBufferConfig {
            capacity: 64,
            // Slow drain keeps the migration window open across several
            // ops, so the frozen replica actually serves traffic.
            drain_per_tick: 1,
            bypass: false,
        })
        .build()
        .unwrap();
    CamCluster::new(config, 3, 12).unwrap()
}

/// Apply `op` and render every observable output (`is_match` per key —
/// match addresses are shard-local and legitimately differ).
fn apply(cluster: &mut CamCluster, op: &ClusterOp) -> String {
    match op {
        ClusterOp::Search(key) => format!("{}", cluster.search(*key).is_match()),
        ClusterOp::SearchStream(keys) => {
            let hits: Vec<bool> = cluster
                .search_stream(keys)
                .iter()
                .map(SearchResult::is_match)
                .collect();
            format!("{hits:?}")
        }
        ClusterOp::Update(word) => format!("{:?}", cluster.update(*word)),
        ClusterOp::Delete(key) => format!("{:?}", cluster.delete(*key)),
        ClusterOp::Idle(cycles) => {
            for _ in 0..*cycles {
                cluster.tick();
            }
            String::new()
        }
    }
}

/// The counter set both arms must agree on at quiescence. `frozen_reads`
/// and `migrations_completed` are migration bookkeeping and excluded by
/// construction.
fn comparable(cluster: &CamCluster) -> Vec<(&'static str, u64)> {
    let c = cluster.counters();
    vec![
        ("searches", c.searches),
        ("stream_keys", c.stream_keys),
        ("updates", c.updates),
        ("deletes", c.deletes),
        ("search_hits", c.search_hits),
        ("delete_hits", c.delete_hits),
        ("update_rejections", c.update_rejections),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn migration_is_observationally_invisible(
        prefill in proptest::collection::vec(0..48u64, 4..24),
        ops in proptest::collection::vec(cluster_op(), 4..28),
        migrate_at in 0usize..28,
        rehydrate_after in 0usize..6,
        slot_seed in 0..48u64,
        dest_offset in 1usize..3,
    ) {
        for fidelity in [FidelityMode::BitAccurate, FidelityMode::Fast, FidelityMode::Turbo] {
            for workers in [1usize, 4] {
                let mut migrated = build(fidelity, workers);
                let mut reference = build(fidelity, workers);
                migrated.prefill(&prefill).unwrap();
                reference.prefill(&prefill).unwrap();
                migrated.quiesce();
                reference.quiesce();

                let slot = migrated.ring().slot_of(slot_seed);
                let dest = (migrated.ring().assignment(slot) + dest_offset) % 3;
                let migrate_at = migrate_at.min(ops.len());
                let mut since_migration: Option<usize> = None;

                for (i, op) in ops.iter().enumerate() {
                    if i == migrate_at && migrated.ring().assignment(slot) != dest {
                        migrated.begin_migration(slot, dest).unwrap();
                        since_migration = Some(0);
                    }
                    // Mid-window snapshot/restore of the destination
                    // shard: must preserve the staged slot words.
                    if let Some(age) = since_migration.as_mut() {
                        if *age == rehydrate_after && migrated.migration_in_progress() {
                            let restored = migrated.shard(dest).unit().rehydrate();
                            migrated.shard_mut(dest).replace_unit(restored);
                        }
                        *age += 1;
                    }
                    let out = apply(&mut migrated, op);
                    let expected = apply(&mut reference, op);
                    prop_assert_eq!(
                        out, expected,
                        "op {} diverged (fidelity {:?}, workers {}, slot {}, dest {})",
                        i, fidelity, workers, slot, dest
                    );
                }

                migrated.quiesce();
                reference.quiesce();
                if migrate_at < ops.len() && since_migration.is_some() {
                    prop_assert_eq!(migrated.counters().migrations_completed, 1);
                    prop_assert_eq!(migrated.ring().assignment(slot), dest);
                }
                prop_assert_eq!(
                    comparable(&migrated), comparable(&reference),
                    "counters diverged (fidelity {:?}, workers {})", fidelity, workers
                );
                prop_assert_eq!(
                    migrated.content_digest(), reference.content_digest(),
                    "stored contents diverged (fidelity {:?}, workers {})", fidelity, workers
                );

                // The replicated snapshots must answer the whole key
                // domain identically.
                let probes: Vec<u64> = (0..48).collect();
                let migrated_hits: Vec<bool> = migrated
                    .snapshot()
                    .search_fan_out(&probes)
                    .iter()
                    .map(SearchResult::is_match)
                    .collect();
                let reference_hits: Vec<bool> = reference
                    .snapshot()
                    .search_fan_out(&probes)
                    .iter()
                    .map(SearchResult::is_match)
                    .collect();
                prop_assert_eq!(migrated_hits, reference_hits);
            }
        }
    }
}
