//! Property-based tests for the DSP48E2 model: the ALU against bit-twiddled
//! oracles, the pattern detector, and the CAM profile against a trivial
//! software CAM cell.

use dsp48::alu::evaluate;
use dsp48::attributes::SimdMode;
use dsp48::cam_profile::CamDsp;
use dsp48::opmode::{AluMode, OpMode};
use dsp48::word::{mask_width, P48};
use proptest::prelude::*;

const M48: u64 = 0xFFFF_FFFF_FFFF;

fn p(v: u64) -> P48 {
    P48::new(v)
}

proptest! {
    #[test]
    fn add_matches_wide_arithmetic(w in 0..=M48, x in 0..=M48, y in 0..=M48, z in 0..=M48, cin: bool) {
        let got = evaluate(AluMode::ADD, SimdMode::One48, p(w), p(x), p(y), p(z), cin).p.value();
        let expect = (w + x + y + z + u64::from(cin)) & M48;
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn sub_matches_wide_arithmetic(w in 0..=M48, x in 0..=M48, y in 0..=M48, z in 0..=M48, cin: bool) {
        let got = evaluate(AluMode::SUB, SimdMode::One48, p(w), p(x), p(y), p(z), cin).p.value();
        let expect = z.wrapping_sub(w + x + y + u64::from(cin)) & M48;
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn xor_matches_bitwise(x in 0..=M48, z in 0..=M48) {
        let got = evaluate(AluMode::XOR, SimdMode::One48, P48::ZERO, p(x), P48::ZERO, p(z), false).p.value();
        prop_assert_eq!(got, x ^ z);
    }

    #[test]
    fn xnor_matches_bitwise(x in 0..=M48, z in 0..=M48) {
        let got = evaluate(AluMode::XNOR, SimdMode::One48, P48::ZERO, p(x), P48::ZERO, p(z), false).p.value();
        prop_assert_eq!(got, !(x ^ z) & M48);
    }

    #[test]
    fn and_matches_bitwise(x in 0..=M48, z in 0..=M48) {
        let got = evaluate(AluMode::AND, SimdMode::One48, P48::ZERO, p(x), P48::ZERO, p(z), false).p.value();
        prop_assert_eq!(got, x & z);
    }

    #[test]
    fn or_via_ones_y(x in 0..=M48, z in 0..=M48) {
        let got = evaluate(AluMode::AND, SimdMode::One48, P48::ZERO, p(x), P48::ONES, p(z), false).p.value();
        prop_assert_eq!(got, x | z);
    }

    #[test]
    fn simd_four12_equals_four_independent_adders(x in 0..=M48, z in 0..=M48, cin: bool) {
        let got = evaluate(AluMode::ADD, SimdMode::Four12, P48::ZERO, p(x), P48::ZERO, p(z), cin);
        for lane in 0..4 {
            let shift = lane * 12;
            let xs = (x >> shift) & mask_width(12);
            let zs = (z >> shift) & mask_width(12);
            let expect = (xs + zs + u64::from(cin)) & mask_width(12);
            prop_assert_eq!((got.p.value() >> shift) & mask_width(12), expect);
            let carry = (xs + zs + u64::from(cin)) >> 12 != 0;
            prop_assert_eq!(got.carry_out[lane as usize], carry);
        }
    }

    #[test]
    fn simd_two24_equals_two_independent_adders(x in 0..=M48, z in 0..=M48) {
        let got = evaluate(AluMode::ADD, SimdMode::Two24, P48::ZERO, p(x), P48::ZERO, p(z), false);
        for lane in 0..2 {
            let shift = lane * 24;
            let xs = (x >> shift) & mask_width(24);
            let zs = (z >> shift) & mask_width(24);
            prop_assert_eq!((got.p.value() >> shift) & mask_width(24), (xs + zs) & mask_width(24));
        }
    }

    #[test]
    fn opmode_roundtrip(raw in 0u16..512) {
        if let Ok(mode) = OpMode::decode(raw) {
            prop_assert_eq!(mode.encode(), raw);
        }
    }

    #[test]
    fn cam_cell_exact_match_semantics(stored in 0..=M48, key in 0..=M48) {
        let mut cell = CamDsp::new();
        cell.write(stored);
        prop_assert_eq!(cell.search(key), stored == key);
        // Searching never disturbs the stored word.
        prop_assert_eq!(cell.stored().value(), stored);
    }

    #[test]
    fn cam_cell_masked_match_semantics(stored in 0..=M48, key in 0..=M48, mask in 0..=M48) {
        let mut cell = CamDsp::with_mask(P48::new(mask));
        cell.write(stored);
        let expect = (stored ^ key) & !mask & M48 == 0;
        prop_assert_eq!(cell.search(key), expect);
    }

    #[test]
    fn cam_cell_last_write_wins(values in proptest::collection::vec(0..=M48, 1..8), key in 0..=M48) {
        let mut cell = CamDsp::new();
        for &v in &values {
            cell.write(v);
        }
        let last = *values.last().unwrap();
        prop_assert_eq!(cell.search(key), key == last);
    }
}
