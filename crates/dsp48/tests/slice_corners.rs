//! Corner-case integration tests for the DSP48E2 slice model: deep input
//! pipelines, INMODE operand selection, carry-input sources, per-bank
//! resets and C-port pattern matching.

use dsp48::attributes::{Attributes, MaskSelect, PatternSelect, RegStages, UseMult};
use dsp48::opmode::{AluMode, CarryInSel, InMode, OpMode, WMux, XMux, YMux, ZMux};
use dsp48::slice::{ClockEnables, Dsp48e2, DspInputs, Resets};
use dsp48::word::P48;

fn opmode_ab_plus_c() -> OpMode {
    OpMode {
        x: XMux::Ab,
        y: YMux::Zero,
        z: ZMux::C,
        w: WMux::Zero,
    }
}

#[test]
fn two_deep_a_b_registers_add_a_cycle() {
    let attrs = Attributes {
        regs: RegStages {
            a: 2,
            b: 2,
            c: 0,
            d: 0,
            ad: 0,
            m: 0,
            p: 1,
            ctrl: 0,
        },
        ..Attributes::cam_cell()
    };
    let mut s = Dsp48e2::new(attrs);
    let (a, b) = P48::new(100).to_ab();
    let io = DspInputs {
        a,
        b,
        c: 11,
        opmode: opmode_ab_plus_c(),
        alumode: AluMode::ADD,
        ..DspInputs::default()
    };
    // A1 -> A2 -> ALU -> P: three edges until P carries A:B + C.
    let o1 = s.tick(&io);
    assert_eq!(o1.p.value(), 11, "first edge: A:B still zero through A2");
    let o2 = s.tick(&io);
    assert_eq!(o2.p.value(), 11, "second edge: A2 just loaded");
    let o3 = s.tick(&io);
    assert_eq!(o3.p.value(), 111, "third edge: full sum");
}

#[test]
fn inmode_a1_selects_the_first_stage_for_the_multiplier() {
    let attrs = Attributes {
        regs: RegStages {
            a: 2,
            b: 2,
            c: 0,
            d: 0,
            ad: 0,
            m: 0,
            p: 1,
            ctrl: 0,
        },
        use_mult: UseMult::Multiply,
        ..Attributes::default()
    };
    let mut s = Dsp48e2::new(attrs);
    let mul = OpMode {
        x: XMux::M,
        y: YMux::M,
        z: ZMux::Zero,
        w: WMux::Zero,
    };
    // Feed 3 then 5 into A; with INMODE[0] (A1 select) the *newer* value is
    // used one cycle earlier than through A2.
    let io_a1 = DspInputs {
        a: 5,
        b: 2,
        opmode: mul,
        alumode: AluMode::ADD,
        inmode: InMode::decode(0b10001).unwrap(), // A1 + B1 select
        ..DspInputs::default()
    };
    s.tick(&io_a1); // A1 = 5, B1 = 2
    let out = s.tick(&io_a1); // ALU saw A1(5) * B1(2) at this edge
    assert_eq!(out.p.value(), 10, "A1/B1 path skips the second stage");
}

#[test]
fn inmode_gate_a_zeroes_the_product() {
    let attrs = Attributes {
        regs: RegStages::none(),
        use_mult: UseMult::Multiply,
        ..Attributes::default()
    };
    let mut s = Dsp48e2::new(attrs);
    let mul = OpMode {
        x: XMux::M,
        y: YMux::M,
        z: ZMux::Zero,
        w: WMux::Zero,
    };
    let io = DspInputs {
        a: 7,
        b: 6,
        opmode: mul,
        alumode: AluMode::ADD,
        inmode: InMode::decode(0b00010).unwrap(), // gate A
        ..DspInputs::default()
    };
    assert_eq!(s.tick(&io).p.value(), 0);
}

#[test]
fn pre_adder_d_plus_a_times_b() {
    let attrs = Attributes {
        regs: RegStages::none(),
        use_mult: UseMult::Multiply,
        ..Attributes::default()
    };
    let mut s = Dsp48e2::new(attrs);
    let mul = OpMode {
        x: XMux::M,
        y: YMux::M,
        z: ZMux::Zero,
        w: WMux::Zero,
    };
    let io = DspInputs {
        a: 3,
        b: 10,
        d: 4,
        opmode: mul,
        alumode: AluMode::ADD,
        inmode: InMode::decode(0b00100).unwrap(), // use D: (A + D) * B
        ..DspInputs::default()
    };
    assert_eq!(s.tick(&io).p.value(), 70);
}

#[test]
fn carryinsel_pcin_msb_rounds() {
    let attrs = Attributes {
        regs: RegStages::none(),
        ..Attributes::cam_cell()
    };
    let mut s = Dsp48e2::new(attrs);
    let io = DspInputs {
        pcin: P48::new(1 << 47), // negative PCIN
        opmode: OpMode {
            x: XMux::Zero,
            y: YMux::Zero,
            z: ZMux::Pcin,
            w: WMux::Zero,
        },
        alumode: AluMode::ADD,
        carryinsel: CarryInSel::PcinMsb,
        ..DspInputs::default()
    };
    // P = PCIN + PCIN[47] = 0x800000000000 + 1.
    assert_eq!(s.tick(&io).p.value(), 0x8000_0000_0001);

    let io2 = DspInputs {
        carryinsel: CarryInSel::NotPcinMsb,
        pcin: P48::new(4),
        ..io
    };
    // ~PCIN[47] = 1 for a positive PCIN.
    assert_eq!(s.tick(&io2).p.value(), 5);
}

#[test]
fn carrycascout_feeds_back_internally() {
    let attrs = Attributes {
        regs: RegStages {
            a: 0,
            b: 0,
            c: 0,
            d: 0,
            ad: 0,
            m: 0,
            p: 1,
            ctrl: 0,
        },
        ..Attributes::cam_cell()
    };
    let mut s = Dsp48e2::new(attrs);
    let (a, b) = P48::ONES.to_ab();
    // First op overflows 48 bits -> CARRYCASCOUT registers 1.
    let overflow = DspInputs {
        a,
        b,
        c: 1,
        opmode: opmode_ab_plus_c(),
        alumode: AluMode::ADD,
        ..DspInputs::default()
    };
    let out = s.tick(&overflow);
    assert!(out.carry_casc_out);
    // Second op consumes it via CARRYINSEL = CarryCascOut.
    let consume = DspInputs {
        a: 0,
        b: 0,
        c: 10,
        opmode: opmode_ab_plus_c(),
        alumode: AluMode::ADD,
        carryinsel: CarryInSel::CarryCascOut,
        ..DspInputs::default()
    };
    assert_eq!(s.tick(&consume).p.value(), 11);
}

#[test]
fn pattern_from_c_with_registered_c() {
    let attrs = Attributes {
        regs: RegStages {
            a: 1,
            b: 1,
            c: 1,
            d: 0,
            ad: 0,
            m: 0,
            p: 1,
            ctrl: 0,
        },
        sel_pattern: PatternSelect::C,
        sel_mask: MaskSelect::Mask,
        pattern: P48::ZERO,
        mask: P48::ZERO,
        ..Attributes::cam_cell()
    };
    let mut s = Dsp48e2::new(attrs);
    // P accumulates A:B; detector compares P against the registered C.
    let (a, b) = P48::new(77).to_ab();
    let io = DspInputs {
        a,
        b,
        c: 77,
        opmode: OpMode {
            x: XMux::Ab,
            y: YMux::Zero,
            z: ZMux::Zero,
            w: WMux::Zero,
        },
        alumode: AluMode::ADD,
        ..DspInputs::default()
    };
    s.tick(&io); // registers load
    let out = s.tick(&io); // P <= 77; detect vs C(77)
    assert!(out.pattern_detect);
    assert!(!out.pattern_b_detect);
}

#[test]
fn per_bank_reset_is_selective() {
    let mut s = Dsp48e2::new(Attributes::cam_cell());
    let (a, b) = P48::new(0xBEEF).to_ab();
    let load = DspInputs {
        a,
        b,
        c: 0x1234,
        opmode: OpMode::CAM_XOR,
        alumode: AluMode::XOR,
        ..DspInputs::default()
    };
    s.tick(&load);
    assert_eq!(s.stored_ab().value(), 0xBEEF);
    // Reset only C; A/B content must survive.
    let rst_c = DspInputs {
        rst: Resets {
            c: true,
            ..Resets::default()
        },
        ce: ClockEnables::none(),
        opmode: OpMode::CAM_XOR,
        alumode: AluMode::XOR,
        ..DspInputs::default()
    };
    s.tick(&rst_c);
    assert_eq!(s.stored_ab().value(), 0xBEEF, "A/B untouched by RSTC");
    // Now reset A/B.
    let rst_ab = DspInputs {
        rst: Resets {
            a: true,
            b: true,
            ..Resets::default()
        },
        ce: ClockEnables::none(),
        opmode: OpMode::CAM_XOR,
        alumode: AluMode::XOR,
        ..DspInputs::default()
    };
    s.tick(&rst_ab);
    assert_eq!(s.stored_ab(), P48::ZERO);
}

#[test]
fn rnd_constant_through_w_mux() {
    let attrs = Attributes {
        regs: RegStages::none(),
        rnd: P48::new(0x800),
        ..Attributes::cam_cell()
    };
    let mut s = Dsp48e2::new(attrs);
    let io = DspInputs {
        c: 0x7FF,
        opmode: OpMode {
            x: XMux::Zero,
            y: YMux::Zero,
            z: ZMux::C,
            w: WMux::Rnd,
        },
        alumode: AluMode::ADD,
        ..DspInputs::default()
    };
    assert_eq!(s.tick(&io).p.value(), 0xFFF);
}

#[test]
fn p_feedback_macc_with_shift() {
    // Multiply-accumulate with the P>>17 path: P <= (P >> 17) + A:B.
    let attrs = Attributes {
        regs: RegStages {
            a: 0,
            b: 0,
            c: 0,
            d: 0,
            ad: 0,
            m: 0,
            p: 1,
            ctrl: 0,
        },
        ..Attributes::cam_cell()
    };
    let mut s = Dsp48e2::new(attrs);
    let (a, b) = P48::new(1 << 20).to_ab();
    let io = DspInputs {
        a,
        b,
        opmode: OpMode {
            x: XMux::Ab,
            y: YMux::Zero,
            z: ZMux::PShift17,
            w: WMux::Zero,
        },
        alumode: AluMode::ADD,
        ..DspInputs::default()
    };
    s.tick(&io); // P = 1<<20
    let out = s.tick(&io); // P = (1<<20 >> 17) + 1<<20 = 8 + 1<<20
    assert_eq!(out.p.value(), (1 << 20) + 8);
}

#[test]
fn clock_enable_gates_the_p_register() {
    let mut s = Dsp48e2::new(Attributes::cam_cell());
    let (a, b) = P48::new(0xAA).to_ab();
    // Establish a mismatch: store 0xAA, search 0x55 -> P = 0xFF, no detect.
    let mismatch = DspInputs {
        a,
        b,
        c: 0x55,
        opmode: OpMode::CAM_XOR,
        alumode: AluMode::XOR,
        ..DspInputs::default()
    };
    s.tick(&mismatch);
    let out = s.tick(&mismatch);
    assert_eq!(out.p.value(), 0xFF);
    assert!(!out.pattern_detect);

    // Present the matching key but keep CEP low: C latches, P freezes.
    let mut hold_p = DspInputs {
        c: 0xAA,
        opmode: OpMode::CAM_XOR,
        alumode: AluMode::XOR,
        ce: ClockEnables::none(),
        ..DspInputs::default()
    };
    hold_p.ce.c = true;
    let frozen = s.tick(&hold_p);
    assert_eq!(frozen.p.value(), 0xFF, "P frozen with CEP low");
    assert!(!frozen.pattern_detect, "flags frozen with P");

    // Raise CEP: the XOR of the matching key latches and detect fires.
    let mut release = hold_p;
    release.ce = ClockEnables::none();
    release.ce.p = true;
    let live = s.tick(&release);
    assert_eq!(live.p, P48::ZERO);
    assert!(live.pattern_detect, "XOR result latched once CEP asserts");
}
