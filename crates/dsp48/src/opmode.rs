//! Dynamic control-word decoding: `OPMODE`, `ALUMODE`, `INMODE`, `CARRYINSEL`.
//!
//! These four fields are *inputs* to the slice (they can change every clock
//! cycle), as opposed to the static [`crate::attributes::Attributes`] fixed
//! at configuration time. The encodings follow UG579; only combinations that
//! are reserved in hardware are rejected here.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Error returned when a control word uses a reserved or illegal encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeControlError {
    field: &'static str,
    value: u16,
}

impl DecodeControlError {
    fn new(field: &'static str, value: u16) -> Self {
        DecodeControlError { field, value }
    }
}

impl fmt::Display for DecodeControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reserved or illegal {} encoding {:#05b}",
            self.field, self.value
        )
    }
}

impl std::error::Error for DecodeControlError {}

/// `OPMODE[1:0]` — X multiplexer select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum XMux {
    /// `00`: constant zero.
    #[default]
    Zero,
    /// `01`: multiplier partial product (requires `YMux::M` as well).
    M,
    /// `10`: the P register (accumulator feedback).
    P,
    /// `11`: the concatenated `A:B` input — the CAM storage path.
    Ab,
}

/// `OPMODE[3:2]` — Y multiplexer select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum YMux {
    /// `00`: constant zero.
    #[default]
    Zero,
    /// `01`: multiplier partial product (requires `XMux::M` as well).
    M,
    /// `10`: all ones (used by the logic unit to toggle XOR/XNOR, AND/OR).
    Ones,
    /// `11`: the C port.
    C,
}

/// `OPMODE[6:4]` — Z multiplexer select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ZMux {
    /// `000`: constant zero.
    #[default]
    Zero,
    /// `001`: the PCIN cascade input.
    Pcin,
    /// `010`: the P register.
    P,
    /// `011`: the C port — the CAM search-key path.
    C,
    /// `100`: the P register (MACC extend; modelled identically to `P`).
    PMaccExtend,
    /// `101`: PCIN arithmetically shifted right by 17 bits.
    PcinShift17,
    /// `110`: P arithmetically shifted right by 17 bits.
    PShift17,
}

/// `OPMODE[8:7]` — W multiplexer select (new in DSP48E2 vs DSP48E1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WMux {
    /// `00`: constant zero.
    #[default]
    Zero,
    /// `01`: the P register.
    P,
    /// `10`: the RND rounding constant attribute.
    Rnd,
    /// `11`: the C port.
    C,
}

/// The full 9-bit `OPMODE` word, decoded into its four multiplexer fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct OpMode {
    /// X multiplexer select (`OPMODE[1:0]`).
    pub x: XMux,
    /// Y multiplexer select (`OPMODE[3:2]`).
    pub y: YMux,
    /// Z multiplexer select (`OPMODE[6:4]`).
    pub z: ZMux,
    /// W multiplexer select (`OPMODE[8:7]`).
    pub w: WMux,
}

impl OpMode {
    /// The CAM search configuration: `X = A:B`, `Z = C`, Y and W zero.
    ///
    /// Together with [`AluMode::XOR`] this computes `(A:B) XOR C` (Eq. 1 of
    /// the paper).
    pub const CAM_XOR: OpMode = OpMode {
        x: XMux::Ab,
        y: YMux::Zero,
        z: ZMux::C,
        w: WMux::Zero,
    };

    /// Decode a raw 9-bit `OPMODE` value.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeControlError`] if a reserved encoding is used
    /// (`Z = 111`, or `OPMODE` wider than 9 bits), or if exactly one of the
    /// X/Y multiplexers selects the multiplier (UG579 requires both).
    pub fn decode(raw: u16) -> Result<Self, DecodeControlError> {
        if raw >= 1 << 9 {
            return Err(DecodeControlError::new("OPMODE", raw));
        }
        let x = match raw & 0b11 {
            0b00 => XMux::Zero,
            0b01 => XMux::M,
            0b10 => XMux::P,
            _ => XMux::Ab,
        };
        let y = match (raw >> 2) & 0b11 {
            0b00 => YMux::Zero,
            0b01 => YMux::M,
            0b10 => YMux::Ones,
            _ => YMux::C,
        };
        let z = match (raw >> 4) & 0b111 {
            0b000 => ZMux::Zero,
            0b001 => ZMux::Pcin,
            0b010 => ZMux::P,
            0b011 => ZMux::C,
            0b100 => ZMux::PMaccExtend,
            0b101 => ZMux::PcinShift17,
            0b110 => ZMux::PShift17,
            _ => return Err(DecodeControlError::new("OPMODE.Z", raw)),
        };
        let w = match (raw >> 7) & 0b11 {
            0b00 => WMux::Zero,
            0b01 => WMux::P,
            0b10 => WMux::Rnd,
            _ => WMux::C,
        };
        let mode = OpMode { x, y, z, w };
        if (x == XMux::M) != (y == YMux::M) {
            return Err(DecodeControlError::new("OPMODE.XY(M)", raw));
        }
        Ok(mode)
    }

    /// Re-encode into the raw 9-bit `OPMODE` value.
    #[must_use]
    pub fn encode(self) -> u16 {
        let x = match self.x {
            XMux::Zero => 0b00,
            XMux::M => 0b01,
            XMux::P => 0b10,
            XMux::Ab => 0b11,
        };
        let y = match self.y {
            YMux::Zero => 0b00,
            YMux::M => 0b01,
            YMux::Ones => 0b10,
            YMux::C => 0b11,
        };
        let z: u16 = match self.z {
            ZMux::Zero => 0b000,
            ZMux::Pcin => 0b001,
            ZMux::P => 0b010,
            ZMux::C => 0b011,
            ZMux::PMaccExtend => 0b100,
            ZMux::PcinShift17 => 0b101,
            ZMux::PShift17 => 0b110,
        };
        let w: u16 = match self.w {
            WMux::Zero => 0b00,
            WMux::P => 0b01,
            WMux::Rnd => 0b10,
            WMux::C => 0b11,
        };
        (w << 7) | (z << 4) | (y << 2) | x
    }

    /// Whether this OPMODE selects the multiplier output.
    #[must_use]
    pub fn uses_multiplier(self) -> bool {
        self.x == XMux::M
    }
}

/// The 4-bit `ALUMODE` word.
///
/// Arithmetic encodings (ALUMODE\[3:2\] = `00`) select add/subtract
/// variants; logic-unit encodings (`01` = sum path, `11` = carry path)
/// select bitwise functions jointly with `OPMODE[3:2]` (the Y multiplexer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AluMode(u8);

impl AluMode {
    /// `0000`: `Z + W + X + Y + CIN`.
    pub const ADD: AluMode = AluMode(0b0000);
    /// `0011`: `Z - (W + X + Y + CIN)`.
    pub const SUB: AluMode = AluMode(0b0011);
    /// `0001`: `-Z + (W + X + Y + CIN) - 1`.
    pub const NEG_Z_ADD: AluMode = AluMode(0b0001);
    /// `0010`: `-(Z + W + X + Y + CIN) - 1`.
    pub const NEG_ALL: AluMode = AluMode(0b0010);
    /// `0100`: logic unit, `X XOR Z` when the Y multiplexer is zero.
    ///
    /// This is the encoding the CAM cell uses (Fig. 2 of the paper).
    pub const XOR: AluMode = AluMode(0b0100);
    /// `0101`: logic unit, `X XNOR Z` when the Y multiplexer is zero.
    pub const XNOR: AluMode = AluMode(0b0101);
    /// `1100`: logic unit, `X AND Z` when the Y multiplexer is zero.
    pub const AND: AluMode = AluMode(0b1100);
    /// `1110`: logic unit, `X NAND Z` when the Y multiplexer is zero.
    pub const NAND: AluMode = AluMode(0b1110);

    /// Decode a raw 4-bit `ALUMODE` value.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeControlError`] if the value does not fit in 4 bits.
    pub fn decode(raw: u8) -> Result<Self, DecodeControlError> {
        if raw >= 1 << 4 {
            return Err(DecodeControlError::new("ALUMODE", u16::from(raw)));
        }
        Ok(AluMode(raw))
    }

    /// The raw 4-bit encoding.
    #[must_use]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// `ALUMODE[0]`: invert Z before the ALU.
    #[must_use]
    pub fn invert_z(self) -> bool {
        self.0 & 0b0001 != 0
    }

    /// `ALUMODE[1]`: invert (negate, in arithmetic mode) the ALU result.
    #[must_use]
    pub fn invert_out(self) -> bool {
        self.0 & 0b0010 != 0
    }

    /// Whether this encoding selects the logic unit rather than arithmetic.
    #[must_use]
    pub fn is_logic(self) -> bool {
        self.0 & 0b0100 != 0
    }

    /// In logic mode, whether the carry (majority) path is selected
    /// (`ALUMODE[3]`), yielding the AND/OR family instead of XOR/XNOR.
    #[must_use]
    pub fn logic_uses_carry_path(self) -> bool {
        self.0 & 0b1000 != 0
    }
}

impl fmt::Display for AluMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ALUMODE={:#06b}", self.0)
    }
}

/// The 5-bit `INMODE` word controlling the A/B input pipelines and pre-adder.
///
/// The model exposes the subset that affects datapath values:
/// * `INMODE[0]` (`A1/A2` select for the multiplier path),
/// * `INMODE[1]` (gate A to zero),
/// * `INMODE[2]` (enable D into the pre-adder),
/// * `INMODE[3]` (negate the A operand into the pre-adder),
/// * `INMODE[4]` (`B1/B2` select).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct InMode(u8);

impl InMode {
    /// The default: use A2/B2, no pre-adder.
    pub const DEFAULT: InMode = InMode(0);

    /// Decode a raw 5-bit `INMODE` value.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeControlError`] if the value does not fit in 5 bits.
    pub fn decode(raw: u8) -> Result<Self, DecodeControlError> {
        if raw >= 1 << 5 {
            return Err(DecodeControlError::new("INMODE", u16::from(raw)));
        }
        Ok(InMode(raw))
    }

    /// The raw 5-bit encoding.
    #[must_use]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// `INMODE[0]`: select the A1 register (first stage) instead of A2.
    #[must_use]
    pub fn select_a1(self) -> bool {
        self.0 & 0b00001 != 0
    }

    /// `INMODE[1]`: force the multiplier A operand to zero.
    #[must_use]
    pub fn gate_a(self) -> bool {
        self.0 & 0b00010 != 0
    }

    /// `INMODE[2]`: include the D port in the pre-adder.
    #[must_use]
    pub fn use_d(self) -> bool {
        self.0 & 0b00100 != 0
    }

    /// `INMODE[3]`: negate the A operand into the pre-adder.
    #[must_use]
    pub fn negate_a(self) -> bool {
        self.0 & 0b01000 != 0
    }

    /// `INMODE[4]`: select the B1 register (first stage) instead of B2.
    #[must_use]
    pub fn select_b1(self) -> bool {
        self.0 & 0b10000 != 0
    }
}

/// The 3-bit `CARRYINSEL` word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CarryInSel {
    /// `000`: the CARRYIN port.
    #[default]
    CarryIn,
    /// `001`: `~PCIN[47]` (round PCIN towards infinity).
    NotPcinMsb,
    /// `010`: the CARRYCASCIN cascade input.
    CarryCascIn,
    /// `011`: `PCIN[47]` (round PCIN towards zero).
    PcinMsb,
    /// `100`: the registered CARRYCASCOUT fed back internally.
    CarryCascOut,
    /// `101`: `~P[47]` (round P towards infinity).
    NotPMsb,
    /// `110`: `A[26] XNOR B[17]` (round multiplier output).
    AxnorB,
    /// `111`: `P[47]` (round P towards zero).
    PMsb,
}

impl CarryInSel {
    /// Decode a raw 3-bit `CARRYINSEL` value.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeControlError`] if the value does not fit in 3 bits.
    pub fn decode(raw: u8) -> Result<Self, DecodeControlError> {
        Ok(match raw {
            0b000 => CarryInSel::CarryIn,
            0b001 => CarryInSel::NotPcinMsb,
            0b010 => CarryInSel::CarryCascIn,
            0b011 => CarryInSel::PcinMsb,
            0b100 => CarryInSel::CarryCascOut,
            0b101 => CarryInSel::NotPMsb,
            0b110 => CarryInSel::AxnorB,
            0b111 => CarryInSel::PMsb,
            _ => return Err(DecodeControlError::new("CARRYINSEL", u16::from(raw))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opmode_roundtrip_all_legal() {
        let mut checked = 0usize;
        for raw in 0..512u16 {
            if let Ok(mode) = OpMode::decode(raw) {
                assert_eq!(mode.encode(), raw, "roundtrip failed for {raw:#011b}");
                checked += 1;
            }
        }
        // 7 legal Z encodings x 4 W; X/Y combinations: both-M or neither-M
        // (3 x 3 + 1 = 10) => 7 * 4 * 10 = 280 legal words.
        assert_eq!(checked, 280);
    }

    #[test]
    fn opmode_reserved_z_rejected() {
        // Z = 111 is reserved.
        let raw = 0b0_0111_0000;
        assert!(OpMode::decode(raw).is_err());
    }

    #[test]
    fn opmode_lone_multiplier_select_rejected() {
        // X = M without Y = M.
        assert!(OpMode::decode(0b0_0000_0001).is_err());
        // Y = M without X = M.
        assert!(OpMode::decode(0b0_0000_0100).is_err());
        // Both together are fine.
        let both = OpMode::decode(0b0_0000_0101).unwrap();
        assert!(both.uses_multiplier());
    }

    #[test]
    fn opmode_too_wide_rejected() {
        assert!(OpMode::decode(512).is_err());
    }

    #[test]
    fn cam_xor_opmode_encoding() {
        // X=A:B (11), Y=0 (00), Z=C (011), W=0 (00) => 0b000110011.
        assert_eq!(OpMode::CAM_XOR.encode(), 0b0_0011_0011);
        assert_eq!(OpMode::decode(0b0_0011_0011).unwrap(), OpMode::CAM_XOR);
    }

    #[test]
    fn alumode_flags() {
        assert!(!AluMode::ADD.is_logic());
        assert!(AluMode::XOR.is_logic());
        assert!(!AluMode::XOR.logic_uses_carry_path());
        assert!(AluMode::AND.is_logic());
        assert!(AluMode::AND.logic_uses_carry_path());
        assert!(AluMode::SUB.invert_z());
        assert!(AluMode::SUB.invert_out());
        assert!(AluMode::decode(16).is_err());
        assert_eq!(AluMode::decode(0b0100).unwrap(), AluMode::XOR);
    }

    #[test]
    fn inmode_flags() {
        let m = InMode::decode(0b10101).unwrap();
        assert!(m.select_a1());
        assert!(m.use_d());
        assert!(m.select_b1());
        assert!(!m.gate_a());
        assert!(!m.negate_a());
        assert!(InMode::decode(0b100000).is_err());
        assert_eq!(InMode::DEFAULT.bits(), 0);
    }

    #[test]
    fn carryinsel_decode() {
        assert_eq!(CarryInSel::decode(0).unwrap(), CarryInSel::CarryIn);
        assert_eq!(CarryInSel::decode(7).unwrap(), CarryInSel::PMsb);
        assert!(CarryInSel::decode(8).is_err());
    }

    #[test]
    fn decode_error_display() {
        let err = OpMode::decode(0b0_0111_0000).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("OPMODE"), "unexpected message: {msg}");
    }
}
