//! # dsp48 — behavioural model of the AMD/Xilinx DSP48E2 slice
//!
//! This crate provides a bit-accurate, cycle-accurate behavioural model of the
//! DSP48E2 slice found in UltraScale/UltraScale+ FPGAs, as documented in
//! *UltraScale Architecture DSP Slice User Guide* (UG579). It is the hardware
//! substrate on which the DSP-based CAM of
//! *Configurable DSP-Based CAM Architecture for Data-Intensive Applications on
//! FPGAs* (DAC 2025) is built: the CAM cell is a DSP48E2 configured in logic
//! mode computing `O = (A:B) XOR C` with the pattern detector reporting a
//! match against zero under a configurable mask.
//!
//! The model covers:
//!
//! * the 48-bit three-input ALU with add/subtract and logic-unit modes
//!   ([`alu`]), including `FOUR12`/`TWO24` SIMD segmentation;
//! * the 27×18 signed multiplier and 27-bit pre-adder ([`multiplier`]);
//! * `OPMODE`/`ALUMODE`/`INMODE`/`CARRYINSEL` decoding with the legality
//!   rules that matter for the CAM configuration ([`opmode`]);
//! * the pattern detector with `PATTERN`/`MASK` selection ([`pattern`]);
//! * the configurable pipeline registers, so operation latency *emerges*
//!   from the register configuration instead of being asserted
//!   ([`slice`](mod@slice));
//! * the exact static configuration used by the paper's CAM cell
//!   ([`cam_profile`]).
//!
//! ## Quickstart
//!
//! ```
//! use dsp48::cam_profile::CamDsp;
//!
//! // A DSP48E2 configured as a 48-bit match cell.
//! let mut cell = CamDsp::new();
//! cell.write(0xDEAD_BEEF);            // 1-cycle update into A:B
//! let hit = cell.search(0xDEAD_BEEF); // 2-cycle search via C + pattern detect
//! assert!(hit);
//! assert!(!cell.search(0xDEAD_BEE0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alu;
pub mod attributes;
pub mod cam_profile;
pub mod cascade;
pub mod multiplier;
pub mod opmode;
pub mod pattern;
pub mod simd_cam;
pub mod slice;
pub mod word;

pub use attributes::{Attributes, PatternSelect, RegStages, SimdMode, UseMult};
pub use opmode::{AluMode, CarryInSel, InMode, OpMode, WMux, XMux, YMux, ZMux};
pub use pattern::PatternDetector;
pub use slice::{Dsp48e2, DspInputs, DspOutputs};
pub use word::{mask_width, P48};
