//! The 48-bit three-input ALU (adder/subtracter and logic unit).
//!
//! The physical ALU is a carry-save compression of the four multiplexer
//! outputs (W, X, Y, Z) followed by a carry-propagate adder. Two properties
//! of that structure are load-bearing for this model:
//!
//! * **Arithmetic mode** (`ALUMODE[3:2] = 00`): the result is
//!   `±Z ± (W + X + Y + CIN)` with the sign/\-1 corrections selected by
//!   `ALUMODE[1:0]`.
//! * **Logic mode** (`ALUMODE[2] = 1`): the carry chain is suppressed and the
//!   output is taken from either the *sum* wires of the 3:2 compressor
//!   (`X ⊕ Y ⊕ Z`, giving the XOR family) or its *carry* wires
//!   (`majority(X, Y, Z)`, giving the AND/OR family, selected by
//!   `ALUMODE[3]`). `ALUMODE[0]` inverts Z on the way in and `ALUMODE[1]`
//!   inverts the result, and driving the Y multiplexer to all-ones toggles
//!   XOR↔XNOR / AND↔OR. This derivation reproduces the UG579 logic-unit
//!   table (e.g. `ALUMODE=0100, OPMODE[3:2]=00` → `X XOR Z`, the CAM mode).
//!
//! SIMD segmentation (`TWO24`/`FOUR12`) splits the carry chain; each segment
//! produces an independent `CARRYOUT`.

use serde::{Deserialize, Serialize};

use crate::attributes::SimdMode;
use crate::opmode::AluMode;
use crate::word::{mask_width, P48};

/// Result of one ALU evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AluResult {
    /// The 48-bit output destined for the P register.
    pub p: P48,
    /// Per-segment carry outputs (`CARRYOUT[3:0]`); in `ONE48` mode only
    /// bit 3 is meaningful, in `TWO24` bits 3 and 1, in `FOUR12` all four.
    pub carry_out: [bool; 4],
}

/// Evaluate the ALU.
///
/// `w`, `x`, `y`, `z` are the four multiplexer outputs and `carry_in` the
/// resolved carry input. In logic mode the carry input and W input are
/// ignored (the logic unit only sees X, Y and Z), matching hardware where
/// `OPMODE[8:7]` must select zero for logic operations.
#[must_use]
pub fn evaluate(
    mode: AluMode,
    simd: SimdMode,
    w: P48,
    x: P48,
    y: P48,
    z: P48,
    carry_in: bool,
) -> AluResult {
    if mode.is_logic() {
        evaluate_logic(mode, x, y, z)
    } else {
        evaluate_arith(mode, simd, w, x, y, z, carry_in)
    }
}

fn evaluate_logic(mode: AluMode, x: P48, y: P48, z: P48) -> AluResult {
    let zm = if mode.invert_z() { z.not() } else { z };
    let raw = if mode.logic_uses_carry_path() {
        // Per-bit majority(x, y, zm): the carry wires of the 3:2 compressor.
        P48::new((x.value() & y.value()) | (x.value() & zm.value()) | (y.value() & zm.value()))
    } else {
        // Sum wires: x ^ y ^ zm.
        x ^ y ^ zm
    };
    let p = if mode.invert_out() { raw.not() } else { raw };
    AluResult {
        p,
        carry_out: [false; 4],
    }
}

fn evaluate_arith(
    mode: AluMode,
    simd: SimdMode,
    w: P48,
    x: P48,
    y: P48,
    z: P48,
    carry_in: bool,
) -> AluResult {
    let seg_w = simd.segment_width();
    let segs = simd.segments();
    let seg_mask = mask_width(seg_w);

    let mut p: u64 = 0;
    let mut carry_out = [false; 4];
    for s in 0..segs {
        let shift = s * seg_w;
        let ws = (w.value() >> shift) & seg_mask;
        let xs = (x.value() >> shift) & seg_mask;
        let ys = (y.value() >> shift) & seg_mask;
        let zs = (z.value() >> shift) & seg_mask;

        // W + X + Y + CIN, then the Z-side corrections per ALUMODE[1:0]:
        //   00: Z + (W+X+Y+CIN)
        //   01: -Z + (W+X+Y+CIN) - 1      (~Z + sum)
        //   10: -(Z + W+X+Y+CIN) - 1      (~(Z + sum))
        //   11: Z - (W+X+Y+CIN)           (Z + ~sum + 1, via both inversions)
        let sum = ws
            .wrapping_add(xs)
            .wrapping_add(ys)
            .wrapping_add(u64::from(carry_in));
        let zs_eff = if mode.invert_z() { !zs & seg_mask } else { zs };
        let total = zs_eff.wrapping_add(sum);
        let result = if mode.invert_out() {
            // NEG_ALL (10): ~(Z + sum); SUB (11): ~(~Z + sum) = Z - sum.
            !total
        } else {
            total
        };
        p |= (result & seg_mask) << shift;

        // Carry out of the segment's carry-propagate adder (before output
        // inversion, as in hardware where CARRYOUT reflects the raw adder).
        let raw_carry = total >> seg_w != 0;
        // Map segment index to CARRYOUT bit: FOUR12 -> 0..3, TWO24 -> 1,3,
        // ONE48 -> 3.
        let bit = match simd {
            SimdMode::One48 => 3,
            SimdMode::Two24 => (s * 2 + 1) as usize,
            SimdMode::Four12 => s as usize,
        };
        carry_out[bit] = raw_carry;
    }
    AluResult {
        p: P48::new(p),
        carry_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opmode::AluMode;

    fn alu48(mode: AluMode, w: u64, x: u64, y: u64, z: u64, cin: bool) -> u64 {
        evaluate(
            mode,
            SimdMode::One48,
            P48::new(w),
            P48::new(x),
            P48::new(y),
            P48::new(z),
            cin,
        )
        .p
        .value()
    }

    #[test]
    fn add_mode_is_four_input_sum() {
        assert_eq!(alu48(AluMode::ADD, 1, 2, 3, 4, false), 10);
        assert_eq!(alu48(AluMode::ADD, 0, 0, 0, 0, true), 1);
    }

    #[test]
    fn sub_mode_is_z_minus_rest() {
        // Z - (W + X + Y + CIN)
        assert_eq!(alu48(AluMode::SUB, 1, 2, 3, 10, false), 4);
        // Wraps within 48 bits when negative.
        assert_eq!(
            alu48(AluMode::SUB, 0, 1, 0, 0, false),
            0xFFFF_FFFF_FFFF // -1 in 48-bit two's complement
        );
    }

    #[test]
    fn neg_z_add_mode() {
        // -Z + (W+X+Y+CIN) - 1
        assert_eq!(alu48(AluMode::NEG_Z_ADD, 0, 10, 0, 3, false), 6);
    }

    #[test]
    fn neg_all_mode() {
        // -(Z + W+X+Y+CIN) - 1
        let got = alu48(AluMode::NEG_ALL, 0, 2, 0, 3, false);
        assert_eq!(P48::new(got).as_signed(), -6);
    }

    #[test]
    fn xor_mode_matches_eq1() {
        // The CAM equation: O = X ^ Z with Y = 0 (Eq. 1 of the paper).
        let x = 0xDEAD_BEEF_CAFE;
        let z = 0x1234_5678_9ABC;
        assert_eq!(alu48(AluMode::XOR, 0, x, 0, z, false), x ^ z);
        // Equal operands XOR to zero -> the match condition.
        assert_eq!(alu48(AluMode::XOR, 0, x, 0, x, false), 0);
    }

    #[test]
    fn xor_with_ones_y_is_xnor() {
        let x = 0xF0F0;
        let z = 0xFF00;
        let ones = 0xFFFF_FFFF_FFFF;
        assert_eq!(
            alu48(AluMode::XOR, 0, x, ones, z, false),
            (x ^ z) ^ ones,
            "Y=all-ones must flip XOR into XNOR"
        );
    }

    #[test]
    fn xnor_mode() {
        let x = 0xAAAA;
        let z = 0xCCCC;
        assert_eq!(
            alu48(AluMode::XNOR, 0, x, 0, z, false),
            (x ^ !z) & 0xFFFF_FFFF_FFFF
        );
    }

    #[test]
    fn and_family_via_carry_path() {
        let x = 0b1100;
        let z = 0b1010;
        assert_eq!(alu48(AluMode::AND, 0, x, 0, z, false), x & z);
        // Y = all ones turns AND into OR (majority with a 1 input).
        let ones = 0xFFFF_FFFF_FFFF;
        assert_eq!(alu48(AluMode::AND, 0, x, ones, z, false), x | z);
        // NAND = inverted AND.
        assert_eq!(
            alu48(AluMode::NAND, 0, x, 0, z, false),
            !(x & z) & 0xFFFF_FFFF_FFFF
        );
    }

    #[test]
    fn logic_mode_ignores_carry_and_w() {
        let with = alu48(AluMode::XOR, 0xFFFF, 0xF0F0, 0, 0x0F0F, true);
        let without = alu48(AluMode::XOR, 0, 0xF0F0, 0, 0x0F0F, false);
        assert_eq!(with, without);
    }

    #[test]
    fn carry_out_one48() {
        let r = evaluate(
            AluMode::ADD,
            SimdMode::One48,
            P48::ZERO,
            P48::ONES,
            P48::ZERO,
            P48::new(1),
            false,
        );
        assert_eq!(r.p, P48::ZERO);
        assert!(r.carry_out[3]);
        assert!(!r.carry_out[0]);
    }

    #[test]
    fn simd_four12_independent_lanes() {
        // Each 12-bit lane saturates independently: lane0 = 0xFFF + 1 wraps,
        // lane1 = 1 + 1 = 2, others zero.
        let x = 0x0000_0000_1FFF; // lane0 = 0xFFF, lane1 = 0x001
        let z = 0x0000_0000_1001; // lane0 = 0x001, lane1 = 0x001
        let r = evaluate(
            AluMode::ADD,
            SimdMode::Four12,
            P48::ZERO,
            P48::new(x),
            P48::ZERO,
            P48::new(z),
            false,
        );
        assert_eq!(r.p.value() & 0xFFF, 0); // lane 0 wrapped
        assert_eq!((r.p.value() >> 12) & 0xFFF, 2); // lane 1 independent
        assert!(r.carry_out[0]);
        assert!(!r.carry_out[1]);
    }

    #[test]
    fn simd_two24_carry_isolation() {
        // Low 24-bit lane overflows; high lane must not see the carry.
        let x = 0x0000_00FF_FFFF;
        let z = 0x0000_0000_0001;
        let r = evaluate(
            AluMode::ADD,
            SimdMode::Two24,
            P48::ZERO,
            P48::new(x),
            P48::ZERO,
            P48::new(z),
            false,
        );
        assert_eq!(r.p.value(), 0);
        assert!(r.carry_out[1]); // low lane carry -> CARRYOUT[1]
        assert!(!r.carry_out[3]);
    }

    #[test]
    fn simd_carry_in_broadcast() {
        // CIN is applied to every segment (hardware broadcasts it).
        let r = evaluate(
            AluMode::ADD,
            SimdMode::Four12,
            P48::ZERO,
            P48::ZERO,
            P48::ZERO,
            P48::ZERO,
            true,
        );
        assert_eq!(r.p.value(), 0x001_001_001_001);
    }
}
