//! The pattern detector — the CAM cell's match engine.
//!
//! The DSP48E2 pattern detector compares the ALU output `P` against a
//! pattern under a mask:
//!
//! ```text
//! PATTERNDETECT  = ((P ⊕ PATTERN)  & ~MASK) == 0
//! PATTERNBDETECT = ((P ⊕ ~PATTERN) & ~MASK) == 0
//! ```
//!
//! A mask bit of `1` *excludes* that bit from the comparison. In the CAM
//! configuration `PATTERN = 0` and the XOR result is compared against zero,
//! so `PATTERNDETECT` is asserted exactly when the stored word matches the
//! search key on all unmasked bits — which is precisely the BCAM/TCAM/RMCAM
//! semantics of Table II in the paper.

use serde::{Deserialize, Serialize};

use crate::attributes::{MaskSelect, PatternSelect};
use crate::word::P48;

/// Outputs of the pattern detector for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PatternOutputs {
    /// `P` matches `PATTERN` on all unmasked bits.
    pub detect: bool,
    /// `P` matches `~PATTERN` on all unmasked bits.
    pub detect_b: bool,
}

/// A configured pattern detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternDetector {
    sel_pattern: PatternSelect,
    sel_mask: MaskSelect,
    pattern: P48,
    mask: P48,
}

impl PatternDetector {
    /// Create a detector from the static attribute values.
    #[must_use]
    pub fn new(sel_pattern: PatternSelect, sel_mask: MaskSelect, pattern: P48, mask: P48) -> Self {
        PatternDetector {
            sel_pattern,
            sel_mask,
            pattern,
            mask,
        }
    }

    /// The effective pattern given the registered C value.
    #[must_use]
    pub fn effective_pattern(&self, c: P48) -> P48 {
        match self.sel_pattern {
            PatternSelect::Pattern => self.pattern,
            PatternSelect::C => c,
        }
    }

    /// The effective mask given the registered C value.
    #[must_use]
    pub fn effective_mask(&self, c: P48) -> P48 {
        match self.sel_mask {
            MaskSelect::Mask => self.mask,
            MaskSelect::C => c,
            MaskSelect::RoundedC1 => P48::new(c.value() << 1),
            MaskSelect::RoundedC2 => P48::new(c.value() << 2),
        }
    }

    /// Evaluate the detector for ALU output `p` and registered C value `c`.
    #[must_use]
    pub fn evaluate(&self, p: P48, c: P48) -> PatternOutputs {
        let pattern = self.effective_pattern(c);
        let mask = self.effective_mask(c);
        let care = mask.not();
        PatternOutputs {
            detect: ((p ^ pattern) & care) == P48::ZERO,
            detect_b: ((p ^ pattern.not()) & care) == P48::ZERO,
        }
    }

    /// Replace the static mask (the CAM block does this when reconfiguring
    /// the cell type or narrowing the stored data width).
    pub fn set_mask(&mut self, mask: P48) {
        self.mask = mask;
    }

    /// The currently configured static mask.
    #[must_use]
    pub fn mask(&self) -> P48 {
        self.mask
    }

    /// Replace the static pattern.
    pub fn set_pattern(&mut self, pattern: P48) {
        self.pattern = pattern;
    }
}

impl Default for PatternDetector {
    /// The CAM default: compare everything against zero.
    fn default() -> Self {
        PatternDetector::new(
            PatternSelect::Pattern,
            MaskSelect::Mask,
            P48::ZERO,
            P48::ZERO,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam_detector(mask: u64) -> PatternDetector {
        PatternDetector::new(
            PatternSelect::Pattern,
            MaskSelect::Mask,
            P48::ZERO,
            P48::new(mask),
        )
    }

    #[test]
    fn exact_match_against_zero() {
        let det = cam_detector(0);
        assert!(det.evaluate(P48::ZERO, P48::ZERO).detect);
        assert!(!det.evaluate(P48::new(1), P48::ZERO).detect);
        assert!(!det.evaluate(P48::new(1 << 47), P48::ZERO).detect);
    }

    #[test]
    fn masked_bits_are_dont_care() {
        // Mask the low byte: any difference there is ignored.
        let det = cam_detector(0xFF);
        assert!(det.evaluate(P48::new(0x5A), P48::ZERO).detect);
        assert!(!det.evaluate(P48::new(0x15A), P48::ZERO).detect);
    }

    #[test]
    fn all_masked_always_matches() {
        let det = cam_detector(0xFFFF_FFFF_FFFF);
        assert!(det.evaluate(P48::ONES, P48::ZERO).detect);
    }

    #[test]
    fn detect_b_is_inverted_pattern() {
        let det = PatternDetector::new(
            PatternSelect::Pattern,
            MaskSelect::Mask,
            P48::ZERO,
            P48::ZERO,
        );
        let out = det.evaluate(P48::ONES, P48::ZERO);
        assert!(!out.detect);
        assert!(out.detect_b, "all-ones P matches ~PATTERN when PATTERN=0");
    }

    #[test]
    fn pattern_from_c_port() {
        let det = PatternDetector::new(PatternSelect::C, MaskSelect::Mask, P48::ZERO, P48::ZERO);
        let c = P48::new(0x1234);
        assert!(det.evaluate(P48::new(0x1234), c).detect);
        assert!(!det.evaluate(P48::new(0x1235), c).detect);
    }

    #[test]
    fn mask_from_c_port_variants() {
        let c = P48::new(0b0110);
        let det = PatternDetector::new(PatternSelect::Pattern, MaskSelect::C, P48::ZERO, P48::ZERO);
        assert_eq!(det.effective_mask(c).value(), 0b0110);
        let det = PatternDetector::new(
            PatternSelect::Pattern,
            MaskSelect::RoundedC1,
            P48::ZERO,
            P48::ZERO,
        );
        assert_eq!(det.effective_mask(c).value(), 0b1100);
        let det = PatternDetector::new(
            PatternSelect::Pattern,
            MaskSelect::RoundedC2,
            P48::ZERO,
            P48::ZERO,
        );
        assert_eq!(det.effective_mask(c).value(), 0b11000);
    }

    #[test]
    fn set_mask_and_pattern_take_effect() {
        let mut det = PatternDetector::default();
        assert!(!det.evaluate(P48::new(0xF0), P48::ZERO).detect);
        det.set_mask(P48::new(0xF0));
        assert!(det.evaluate(P48::new(0xF0), P48::ZERO).detect);
        assert_eq!(det.mask().value(), 0xF0);
        det.set_pattern(P48::new(0x0F));
        assert!(det.evaluate(P48::new(0x0F), P48::ZERO).detect);
    }
}
