//! Cascaded slice chains (the PCIN/PCOUT column).
//!
//! DSP48E2 slices in one column chain their P outputs into the next
//! slice's PCIN with dedicated silicon routes. Two classic uses are
//! modelled here:
//!
//! * [`AdderChain`] — a systolic accumulator tree: each stage adds its own
//!   `A:B` operand onto the cascade partial sum, producing
//!   `Σ operands` after `depth` cycles at full pipeline rate — the
//!   structure used for wide dot products / filters;
//! * this is also the structure of Preußer et al.'s cascade CAM
//!   (modelled at the architectural level in `dsp-cam-baselines`), whose
//!   per-stage ripple is exactly why its search latency grows with
//!   capacity while the paper's broadcast CAM stays constant.

use serde::{Deserialize, Serialize};

use crate::attributes::{Attributes, RegStages};
use crate::opmode::{AluMode, OpMode, WMux, XMux, YMux, ZMux};
use crate::slice::{Dsp48e2, DspInputs};
use crate::word::P48;

/// A column of cascaded slices computing a pipelined running sum.
///
/// Stage `i` receives its operand through an `i`-deep input skew register
/// chain (the fabric registers a systolic array always needs), so that the
/// operand of vector `k` meets vector `k`'s partial sum as it ripples down
/// the cascade.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdderChain {
    slices: Vec<Dsp48e2>,
    /// Input skew: `skew[i]` delays stage i's operand by `i` cycles.
    skew: Vec<std::collections::VecDeque<u64>>,
}

impl AdderChain {
    /// Build a chain of `depth` slices (each with a registered P stage).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "chain needs at least one slice");
        let attrs = Attributes {
            regs: RegStages {
                a: 0,
                b: 0,
                c: 0,
                d: 0,
                ad: 0,
                m: 0,
                p: 1,
                ctrl: 0,
            },
            ..Attributes::cam_cell()
        };
        AdderChain {
            slices: (0..depth).map(|_| Dsp48e2::new(attrs)).collect(),
            skew: (0..depth)
                .map(|i| std::collections::VecDeque::from(vec![0u64; i]))
                .collect(),
        }
    }

    /// Number of stages.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.slices.len()
    }

    /// Latency from an operand vector entering to its sum leaving.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.slices.len() as u64
    }

    /// Advance one cycle: present one operand vector. Returns the chain's
    /// current output — the sum of the vector presented `depth` cycles
    /// earlier, once the pipeline is primed.
    ///
    /// # Panics
    ///
    /// Panics if `operands.len() != depth`.
    pub fn tick(&mut self, operands: &[u64]) -> P48 {
        assert_eq!(operands.len(), self.slices.len(), "one operand per stage");
        let first_op = OpMode {
            x: XMux::Ab,
            y: YMux::Zero,
            z: ZMux::Zero,
            w: WMux::Zero,
        };
        let chain_op = OpMode {
            x: XMux::Ab,
            y: YMux::Zero,
            z: ZMux::Pcin,
            w: WMux::Zero,
        };
        // During cycle t, stage i's PCIN is stage i-1's P register *as it
        // stands in cycle t* (pre-edge): capture those values first.
        let pre_edge_p: Vec<P48> = self.slices.iter().map(Dsp48e2::p).collect();
        let output = *pre_edge_p.last().expect("nonempty chain");
        for (i, slice) in self.slices.iter_mut().enumerate() {
            // Operand for stage i, delayed i cycles by the skew registers.
            self.skew[i].push_back(operands[i]);
            let operand = self.skew[i].pop_front().expect("skew primed");
            let (a, b) = P48::new(operand).to_ab();
            let io = DspInputs {
                a,
                b,
                pcin: if i == 0 { P48::ZERO } else { pre_edge_p[i - 1] },
                opmode: if i == 0 { first_op } else { chain_op },
                alumode: AluMode::ADD,
                ..DspInputs::default()
            };
            slice.tick(&io);
        }
        output
    }

    /// Convenience: push `vectors` through the chain (one per cycle, plus
    /// drain) and return the resulting sums in order.
    pub fn run(&mut self, vectors: &[Vec<u64>]) -> Vec<P48> {
        let mut outputs = Vec::new();
        for v in vectors {
            outputs.push(self.tick(v));
        }
        let zeros = vec![0u64; self.depth()];
        for _ in 0..self.depth() {
            outputs.push(self.tick(&zeros));
        }
        // The first `depth` outputs are pipeline fill; vector k's sum is
        // returned by tick k + depth.
        outputs.drain(..self.depth());
        outputs.truncate(vectors.len());
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_sums_operand_vectors() {
        let mut chain = AdderChain::new(4);
        let sums = chain.run(&[vec![1, 2, 3, 4], vec![10, 20, 30, 40], vec![0, 0, 0, 5]]);
        assert_eq!(sums[0].value(), 10);
        assert_eq!(sums[1].value(), 100);
        assert_eq!(sums[2].value(), 5);
    }

    #[test]
    fn latency_equals_depth() {
        let mut chain = AdderChain::new(3);
        assert_eq!(chain.latency(), 3);
        // Present a vector, then zeros: the sum appears after `depth`
        // ticks (systolic skew through the registered P stages).
        let mut outs = vec![chain.tick(&[5, 6, 7])];
        for _ in 0..3 {
            outs.push(chain.tick(&[0, 0, 0]));
        }
        assert_eq!(outs[3].value(), 18);
    }

    #[test]
    fn single_stage_chain() {
        let mut chain = AdderChain::new(1);
        let sums = chain.run(&[vec![42]]);
        assert_eq!(sums[0].value(), 42);
    }

    #[test]
    fn pipelined_back_to_back_vectors() {
        // Full rate: a new vector every cycle, sums emerge every cycle.
        let mut chain = AdderChain::new(2);
        let inputs: Vec<Vec<u64>> = (0..6).map(|i| vec![i, i * 10]).collect();
        let sums = chain.run(&inputs);
        for (i, sum) in sums.iter().enumerate() {
            assert_eq!(sum.value(), i as u64 * 11, "vector {i}");
        }
    }

    #[test]
    #[should_panic(expected = "one operand per stage")]
    fn wrong_operand_count_panics() {
        AdderChain::new(2).tick(&[1]);
    }

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn empty_chain_panics() {
        let _ = AdderChain::new(0);
    }
}
