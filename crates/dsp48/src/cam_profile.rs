//! The CAM configuration of the slice (Fig. 2 of the paper).
//!
//! [`CamDsp`] wraps a [`Dsp48e2`] in the exact static configuration the
//! paper's CAM cell uses — logic mode computing `O = (A:B) ⊕ C` (Eq. 1),
//! pattern detect against zero, single-stage input and output registers —
//! and exposes the three primitive operations the surrounding CAM block
//! drives: `write` (1 cycle), `search` (2 cycles) and `clear`.
//!
//! This type deliberately stays *below* CAM semantics: it has no valid bit
//! and no knowledge of CAM kinds. Those belong to the block logic in the
//! `dsp-cam-core` crate; keeping them out of the slice mirrors the hardware
//! split between the DSP primitive and the fabric around it.

use serde::{Deserialize, Serialize};

use crate::attributes::Attributes;
use crate::opmode::{AluMode, OpMode};
use crate::slice::{ClockEnables, Dsp48e2, DspInputs, Resets};
use crate::word::P48;

/// A DSP48E2 slice statically configured as a CAM match cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CamDsp {
    slice: Dsp48e2,
    cycles: u64,
}

impl CamDsp {
    /// Update latency in clock cycles (Table V).
    pub const UPDATE_LATENCY: u64 = 1;
    /// Search latency in clock cycles (Table V).
    pub const SEARCH_LATENCY: u64 = 2;

    /// Create a cell with an all-care mask (binary CAM behaviour).
    #[must_use]
    pub fn new() -> Self {
        CamDsp {
            slice: Dsp48e2::new(Attributes::cam_cell()),
            cycles: 0,
        }
    }

    /// Create a cell with a specific pattern-detector mask (a `1` bit is
    /// "don't care", per Table II of the paper).
    #[must_use]
    pub fn with_mask(mask: P48) -> Self {
        let mut cell = CamDsp::new();
        cell.slice.detector_mut().set_mask(mask);
        cell
    }

    /// Replace the match mask.
    pub fn set_mask(&mut self, mask: P48) {
        self.slice.detector_mut().set_mask(mask);
    }

    /// The current match mask.
    #[must_use]
    pub fn mask(&self) -> P48 {
        self.slice.detector().mask()
    }

    /// Total clock cycles this cell has consumed.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The stored 48-bit word (the registered `A:B` value).
    #[must_use]
    pub fn stored(&self) -> P48 {
        self.slice.stored_ab()
    }

    fn base_inputs() -> DspInputs {
        DspInputs {
            opmode: OpMode::CAM_XOR,
            alumode: AluMode::XOR,
            ce: ClockEnables::none(),
            ..DspInputs::default()
        }
    }

    /// Write a word into the cell: a single cycle with the A/B clock
    /// enables asserted.
    pub fn write(&mut self, data: impl Into<P48>) {
        let (a, b) = data.into().to_ab();
        let mut io = Self::base_inputs();
        io.a = a;
        io.b = b;
        io.ce.a = true;
        io.ce.b = true;
        self.slice.tick(&io);
        self.cycles += 1;
    }

    /// Search for `key`: two cycles (C register, then ALU + pattern detect
    /// into the P-stage flops). Returns the match flag.
    pub fn search(&mut self, key: impl Into<P48>) -> bool {
        let mut io = Self::base_inputs();
        io.c = key.into().value();
        io.ce.c = true;
        io.ce.p = true;
        self.slice.tick(&io);
        let mut hold = Self::base_inputs();
        hold.ce.p = true;
        let out = self.slice.tick(&hold);
        self.cycles += 2;
        out.pattern_detect
    }

    /// Issue the first cycle of a pipelined search (latch the key) without
    /// waiting for the result; the caller ticks the pipeline itself. Used
    /// by the CAM block to overlap searches at initiation interval 1.
    pub fn search_issue(&mut self, key: impl Into<P48>) {
        let mut io = Self::base_inputs();
        io.c = key.into().value();
        io.ce.c = true;
        io.ce.p = true;
        self.slice.tick(&io);
        self.cycles += 1;
    }

    /// Advance one cycle with no new key and return the match output of the
    /// previously issued search.
    pub fn search_drain(&mut self) -> bool {
        let mut hold = Self::base_inputs();
        hold.ce.p = true;
        let out = self.slice.tick(&hold);
        self.cycles += 1;
        out.pattern_detect
    }

    /// Clear the stored contents (the block's reset signal).
    pub fn clear(&mut self) {
        let mut io = Self::base_inputs();
        io.rst = Resets::all();
        self.slice.tick(&io);
        self.cycles += 1;
    }

    /// Borrow the underlying slice (for inspection in tests/benches).
    #[must_use]
    pub fn slice(&self) -> &Dsp48e2 {
        &self.slice
    }
}

impl Default for CamDsp {
    fn default() -> Self {
        CamDsp::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_search_hits() {
        let mut cell = CamDsp::new();
        cell.write(0x1234u64);
        assert!(cell.search(0x1234u64));
        assert!(!cell.search(0x1235u64));
        assert_eq!(cell.stored().value(), 0x1234);
    }

    #[test]
    fn latency_accounting_matches_table_v() {
        let mut cell = CamDsp::new();
        let before = cell.cycles();
        cell.write(1u64);
        assert_eq!(cell.cycles() - before, CamDsp::UPDATE_LATENCY);
        let before = cell.cycles();
        cell.search(1u64);
        assert_eq!(cell.cycles() - before, CamDsp::SEARCH_LATENCY);
    }

    #[test]
    fn overwrite_replaces_content() {
        let mut cell = CamDsp::new();
        cell.write(10u64);
        cell.write(20u64);
        assert!(!cell.search(10u64));
        assert!(cell.search(20u64));
    }

    #[test]
    fn masked_cell_ignores_dont_care_bits() {
        let mut cell = CamDsp::with_mask(P48::new(0x0F));
        cell.write(0xA0u64);
        assert!(cell.search(0xA7u64));
        assert!(cell.search(0xAFu64));
        assert!(!cell.search(0xB0u64));
        assert_eq!(cell.mask().value(), 0x0F);
    }

    #[test]
    fn clear_resets_content() {
        let mut cell = CamDsp::new();
        cell.write(99u64);
        cell.clear();
        assert_eq!(cell.stored(), P48::ZERO);
    }

    #[test]
    fn pipelined_issue_drain_overlap() {
        let mut cell = CamDsp::new();
        cell.write(5u64);
        // Issue key 5; next cycle issue key 6 while draining the first.
        cell.search_issue(5u64);
        cell.search_issue(6u64); // this cycle also computes match for key 5
                                 // The drain returns the result for key 6 (latency 2 after its issue).
        let hit6 = cell.search_drain();
        assert!(!hit6);
        // And a fresh full search still works.
        assert!(cell.search(5u64));
    }

    #[test]
    fn max_width_value_roundtrip() {
        let mut cell = CamDsp::new();
        cell.write(P48::ONES);
        assert!(cell.search(P48::ONES));
        assert!(!cell.search(P48::new(0x7FFF_FFFF_FFFF)));
    }
}
