//! Static configuration attributes of the DSP48E2 slice.
//!
//! Attributes are fixed when the slice is instantiated (at "synthesis time")
//! and cannot change during operation, unlike the dynamic control words in
//! [`crate::opmode`]. The pipeline-register attributes are what determine
//! operation latency: the paper's CAM cell keeps one register stage on every
//! input and on P, which yields the 1-cycle update / 2-cycle search latency
//! reported in Table V.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::word::P48;

/// Number of pipeline stages on each register bank.
///
/// A and B support 0–2 stages (`A1`/`A2`, `B1`/`B2`); the other banks
/// support 0–1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegStages {
    /// `AREG` ∈ {0, 1, 2}.
    pub a: u8,
    /// `BREG` ∈ {0, 1, 2}.
    pub b: u8,
    /// `CREG` ∈ {0, 1}.
    pub c: u8,
    /// `DREG` ∈ {0, 1}.
    pub d: u8,
    /// `ADREG` (pre-adder output) ∈ {0, 1}.
    pub ad: u8,
    /// `MREG` (multiplier output) ∈ {0, 1}.
    pub m: u8,
    /// `PREG` (ALU output) ∈ {0, 1}.
    pub p: u8,
    /// `OPMODEREG`/`ALUMODEREG`/`INMODEREG`/`CARRYINSELREG` ∈ {0, 1};
    /// modelled as one shared control-register depth.
    pub ctrl: u8,
}

impl RegStages {
    /// Fully pipelined configuration (maximum frequency): `A=B=2`, all
    /// single-stage banks enabled.
    #[must_use]
    pub fn full() -> Self {
        RegStages {
            a: 2,
            b: 2,
            c: 1,
            d: 1,
            ad: 1,
            m: 1,
            p: 1,
            ctrl: 1,
        }
    }

    /// The CAM-cell configuration used by the paper: single-stage A/B/C and
    /// P, control unregistered (driven by the surrounding block logic),
    /// multiplier path unused.
    #[must_use]
    pub fn cam() -> Self {
        RegStages {
            a: 1,
            b: 1,
            c: 1,
            d: 0,
            ad: 0,
            m: 0,
            p: 1,
            ctrl: 0,
        }
    }

    /// Fully combinational (all registers bypassed).
    #[must_use]
    pub fn none() -> Self {
        RegStages {
            a: 0,
            b: 0,
            c: 0,
            d: 0,
            ad: 0,
            m: 0,
            p: 0,
            ctrl: 0,
        }
    }

    /// Validate the stage counts against the hardware limits.
    ///
    /// # Errors
    ///
    /// Returns [`AttributeError`] if any bank exceeds its supported depth.
    pub fn validate(&self) -> Result<(), AttributeError> {
        let check = |name: &'static str, value: u8, max: u8| {
            if value > max {
                Err(AttributeError::RegDepth { name, value, max })
            } else {
                Ok(())
            }
        };
        check("AREG", self.a, 2)?;
        check("BREG", self.b, 2)?;
        check("CREG", self.c, 1)?;
        check("DREG", self.d, 1)?;
        check("ADREG", self.ad, 1)?;
        check("MREG", self.m, 1)?;
        check("PREG", self.p, 1)?;
        check("CTRLREG", self.ctrl, 1)?;
        Ok(())
    }
}

impl Default for RegStages {
    fn default() -> Self {
        RegStages::full()
    }
}

/// `USE_MULT` attribute: whether the multiplier is in the datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum UseMult {
    /// Multiplier unused; the A:B concatenation path is free. This is the
    /// CAM configuration and also saves power.
    #[default]
    None,
    /// Multiplier available (`MULTIPLY`).
    Multiply,
    /// Dynamic selection per INMODE (`DYNAMIC`); modelled as `Multiply`.
    Dynamic,
}

/// `USE_SIMD` attribute: ALU segmentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SimdMode {
    /// Single 48-bit ALU.
    #[default]
    One48,
    /// Two independent 24-bit ALUs.
    Two24,
    /// Four independent 12-bit ALUs.
    Four12,
}

impl SimdMode {
    /// Width of each independent segment in bits.
    #[must_use]
    pub fn segment_width(self) -> u32 {
        match self {
            SimdMode::One48 => 48,
            SimdMode::Two24 => 24,
            SimdMode::Four12 => 12,
        }
    }

    /// Number of independent segments.
    #[must_use]
    pub fn segments(self) -> u32 {
        48 / self.segment_width()
    }
}

/// `SEL_PATTERN` attribute: source of the pattern compared against P.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PatternSelect {
    /// Compare against the static `PATTERN` attribute.
    #[default]
    Pattern,
    /// Compare against the (registered) C port value.
    C,
}

/// `SEL_MASK` attribute: source of the pattern-detector mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MaskSelect {
    /// Use the static `MASK` attribute.
    #[default]
    Mask,
    /// Use the (registered) C port value.
    C,
    /// Use `C << 1` (rounding support).
    RoundedC1,
    /// Use `C << 2` (rounding support).
    RoundedC2,
}

/// Full static attribute set for a slice instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attributes {
    /// Pipeline-register depths.
    pub regs: RegStages,
    /// Multiplier usage.
    pub use_mult: UseMult,
    /// ALU SIMD segmentation.
    pub simd: SimdMode,
    /// Pattern source select.
    pub sel_pattern: PatternSelect,
    /// Mask source select.
    pub sel_mask: MaskSelect,
    /// The static `PATTERN` attribute (48 bits).
    pub pattern: P48,
    /// The static `MASK` attribute (48 bits); a `1` bit *excludes* that bit
    /// from pattern comparison ("don't care"), per UG579. Default masks the
    /// top two bits (`0x3FFFFFFFFFFF`... in hardware the default is
    /// `48'h3FFFFFFFFFFF`).
    pub mask: P48,
    /// The `RND` rounding constant selectable through the W multiplexer.
    pub rnd: P48,
}

impl Attributes {
    /// Attribute set for the paper's CAM cell (Fig. 2): logic-mode slice,
    /// pattern detect against zero, mask defaulting to "compare all bits"
    /// (binary CAM), CAM pipeline depths.
    #[must_use]
    pub fn cam_cell() -> Self {
        Attributes {
            regs: RegStages::cam(),
            use_mult: UseMult::None,
            simd: SimdMode::One48,
            sel_pattern: PatternSelect::Pattern,
            sel_mask: MaskSelect::Mask,
            pattern: P48::ZERO,
            mask: P48::ZERO,
            rnd: P48::ZERO,
        }
    }

    /// Validate attribute consistency.
    ///
    /// # Errors
    ///
    /// Returns [`AttributeError`] if register depths are out of range, or if
    /// SIMD segmentation is combined with the multiplier (illegal per
    /// UG579: `USE_SIMD` other than `ONE48` requires `USE_MULT = NONE`).
    pub fn validate(&self) -> Result<(), AttributeError> {
        self.regs.validate()?;
        if self.simd != SimdMode::One48 && self.use_mult != UseMult::None {
            return Err(AttributeError::SimdWithMultiplier);
        }
        Ok(())
    }
}

impl Default for Attributes {
    fn default() -> Self {
        Attributes {
            regs: RegStages::full(),
            use_mult: UseMult::None,
            simd: SimdMode::One48,
            sel_pattern: PatternSelect::Pattern,
            sel_mask: MaskSelect::Mask,
            pattern: P48::ZERO,
            mask: P48::new(0x3FFF_FFFF_FFFF),
            rnd: P48::ZERO,
        }
    }
}

/// Error raised by attribute validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttributeError {
    /// A register bank was configured deeper than the hardware supports.
    RegDepth {
        /// Attribute name, e.g. `"AREG"`.
        name: &'static str,
        /// Requested depth.
        value: u8,
        /// Maximum supported depth.
        max: u8,
    },
    /// SIMD segmentation combined with the multiplier.
    SimdWithMultiplier,
}

impl fmt::Display for AttributeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttributeError::RegDepth { name, value, max } => {
                write!(f, "{name} depth {value} exceeds hardware maximum {max}")
            }
            AttributeError::SimdWithMultiplier => {
                write!(f, "USE_SIMD other than ONE48 requires USE_MULT = NONE")
            }
        }
    }
}

impl std::error::Error for AttributeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_attributes_validate() {
        Attributes::default().validate().unwrap();
        Attributes::cam_cell().validate().unwrap();
    }

    #[test]
    fn reg_depth_limits_enforced() {
        let mut regs = RegStages::full();
        regs.a = 3;
        assert_eq!(
            regs.validate(),
            Err(AttributeError::RegDepth {
                name: "AREG",
                value: 3,
                max: 2
            })
        );
        let mut regs = RegStages::full();
        regs.c = 2;
        assert!(regs.validate().is_err());
    }

    #[test]
    fn simd_with_multiplier_rejected() {
        let attrs = Attributes {
            simd: SimdMode::Four12,
            use_mult: UseMult::Multiply,
            ..Attributes::default()
        };
        assert_eq!(attrs.validate(), Err(AttributeError::SimdWithMultiplier));
    }

    #[test]
    fn simd_geometry() {
        assert_eq!(SimdMode::One48.segments(), 1);
        assert_eq!(SimdMode::Two24.segments(), 2);
        assert_eq!(SimdMode::Four12.segments(), 4);
        assert_eq!(SimdMode::Four12.segment_width(), 12);
    }

    #[test]
    fn cam_cell_latency_defining_registers() {
        let regs = RegStages::cam();
        // 1-cycle update (A/B registers), 2-cycle search (C + P).
        assert_eq!(regs.a, 1);
        assert_eq!(regs.b, 1);
        assert_eq!(regs.c, 1);
        assert_eq!(regs.p, 1);
        assert_eq!(regs.m, 0);
    }

    #[test]
    fn attribute_error_display() {
        assert!(AttributeError::SimdWithMultiplier
            .to_string()
            .contains("ONE48"));
        let err = AttributeError::RegDepth {
            name: "AREG",
            value: 3,
            max: 2,
        };
        assert!(err.to_string().contains("AREG"));
    }
}
