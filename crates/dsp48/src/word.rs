//! Fixed-width word arithmetic helpers.
//!
//! The DSP48E2 datapath is 48 bits wide; its ports are 30 (A), 18 (B),
//! 27 (D) and 48 (C) bits. All values in this crate are carried in `u64`
//! (or the [`P48`] newtype for the main datapath) and truncated to their
//! hardware width at module boundaries, exactly as wires would be.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Width of the main DSP48E2 datapath in bits.
pub const P_WIDTH: u32 = 48;
/// Width of the A input port in bits.
pub const A_WIDTH: u32 = 30;
/// Width of the B input port in bits.
pub const B_WIDTH: u32 = 18;
/// Width of the C input port in bits.
pub const C_WIDTH: u32 = 48;
/// Width of the D (pre-adder) input port in bits.
pub const D_WIDTH: u32 = 27;
/// Width of the multiplier A operand in bits.
pub const AMULT_WIDTH: u32 = 27;

/// All-ones mask for a `width`-bit field.
///
/// # Panics
///
/// Panics if `width > 64`.
#[inline]
#[must_use]
pub fn mask_width(width: u32) -> u64 {
    assert!(width <= 64, "width {width} exceeds u64");
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Truncate `value` to `width` bits.
#[inline]
#[must_use]
pub fn truncate(value: u64, width: u32) -> u64 {
    value & mask_width(width)
}

/// Sign-extend the low `width` bits of `value` into an `i64`.
///
/// # Panics
///
/// Panics if `width` is zero or greater than 64.
#[inline]
#[must_use]
pub fn sign_extend(value: u64, width: u32) -> i64 {
    assert!((1..=64).contains(&width), "width {width} out of range");
    let shift = 64 - width;
    ((value << shift) as i64) >> shift
}

/// A 48-bit value on the DSP48E2 main datapath.
///
/// The inner representation is a `u64` whose upper 16 bits are always zero;
/// every constructor and arithmetic operation re-truncates, so the invariant
/// cannot be violated by safe code.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct P48(u64);

impl P48 {
    /// The zero value.
    pub const ZERO: P48 = P48(0);
    /// All 48 bits set (the ALU's "all ones" Y-multiplexer constant).
    pub const ONES: P48 = P48(0xFFFF_FFFF_FFFF);

    /// Construct from a `u64`, truncating to 48 bits.
    #[inline]
    #[must_use]
    pub fn new(value: u64) -> Self {
        P48(truncate(value, P_WIDTH))
    }

    /// The raw 48-bit value, zero-extended into a `u64`.
    #[inline]
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Interpret the 48-bit value as a signed quantity.
    #[inline]
    #[must_use]
    pub fn as_signed(self) -> i64 {
        sign_extend(self.0, P_WIDTH)
    }

    /// Bitwise NOT within 48 bits.
    #[inline]
    #[must_use]
    #[allow(clippy::should_implement_trait)] // named for the hardware op
    pub fn not(self) -> Self {
        P48::new(!self.0)
    }

    /// Wrapping 48-bit addition, returning `(sum, carry_out)`.
    #[inline]
    #[must_use]
    pub fn wrapping_add(self, rhs: P48, carry_in: bool) -> (P48, bool) {
        let full = self.0 + rhs.0 + u64::from(carry_in);
        (P48::new(full), full >> P_WIDTH != 0)
    }

    /// Concatenate a 30-bit A value with an 18-bit B value (`A:B`).
    ///
    /// This is the storage path used by the CAM cell: the two input registers
    /// together hold one 48-bit entry.
    #[inline]
    #[must_use]
    pub fn from_ab(a: u64, b: u64) -> Self {
        P48::new((truncate(a, A_WIDTH) << B_WIDTH) | truncate(b, B_WIDTH))
    }

    /// Split into the `(A, B)` pair that [`P48::from_ab`] would concatenate.
    #[inline]
    #[must_use]
    pub fn to_ab(self) -> (u64, u64) {
        (self.0 >> B_WIDTH, truncate(self.0, B_WIDTH))
    }

    /// Extract bit `index` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 48`.
    #[inline]
    #[must_use]
    pub fn bit(self, index: u32) -> bool {
        assert!(index < P_WIDTH, "bit index {index} out of range");
        (self.0 >> index) & 1 == 1
    }
}

impl From<u64> for P48 {
    #[inline]
    fn from(value: u64) -> Self {
        P48::new(value)
    }
}

impl From<P48> for u64 {
    #[inline]
    fn from(value: P48) -> Self {
        value.value()
    }
}

impl std::ops::BitXor for P48 {
    type Output = P48;
    #[inline]
    fn bitxor(self, rhs: P48) -> P48 {
        P48(self.0 ^ rhs.0)
    }
}

impl std::ops::BitAnd for P48 {
    type Output = P48;
    #[inline]
    fn bitand(self, rhs: P48) -> P48 {
        P48(self.0 & rhs.0)
    }
}

impl std::ops::BitOr for P48 {
    type Output = P48;
    #[inline]
    fn bitor(self, rhs: P48) -> P48 {
        P48(self.0 | rhs.0)
    }
}

impl fmt::Display for P48 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#014x}", self.0)
    }
}

impl fmt::LowerHex for P48 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for P48 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for P48 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for P48 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_width_edges() {
        assert_eq!(mask_width(0), 0);
        assert_eq!(mask_width(1), 1);
        assert_eq!(mask_width(48), 0xFFFF_FFFF_FFFF);
        assert_eq!(mask_width(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds u64")]
    fn mask_width_too_wide_panics() {
        let _ = mask_width(65);
    }

    #[test]
    fn truncate_drops_high_bits() {
        assert_eq!(truncate(0x1_FFFF_FFFF_FFFF, 48), 0xFFFF_FFFF_FFFF);
        assert_eq!(truncate(0xAB, 4), 0xB);
    }

    #[test]
    fn sign_extend_behaviour() {
        assert_eq!(sign_extend(0x8000_0000_0000, 48), -(1i64 << 47));
        assert_eq!(sign_extend(0x7FFF_FFFF_FFFF, 48), (1i64 << 47) - 1);
        assert_eq!(sign_extend(0b1111, 4), -1);
        assert_eq!(sign_extend(0b0111, 4), 7);
    }

    #[test]
    fn p48_truncates_on_construction() {
        assert_eq!(P48::new(u64::MAX).value(), 0xFFFF_FFFF_FFFF);
        assert_eq!(P48::from(1u64 << 48).value(), 0);
    }

    #[test]
    fn p48_ab_concat_roundtrip() {
        let p = P48::from_ab(0x3FFF_FFFF, 0x3_FFFF);
        assert_eq!(p, P48::ONES);
        let (a, b) = p.to_ab();
        assert_eq!(a, 0x3FFF_FFFF);
        assert_eq!(b, 0x3_FFFF);

        let p = P48::from_ab(0x1234_5678, 0x2_ABCD);
        let (a, b) = p.to_ab();
        assert_eq!(a, 0x1234_5678);
        assert_eq!(b, 0x2_ABCD);
    }

    #[test]
    fn p48_wrapping_add_carry() {
        let (sum, carry) = P48::ONES.wrapping_add(P48::new(1), false);
        assert_eq!(sum, P48::ZERO);
        assert!(carry);

        let (sum, carry) = P48::ONES.wrapping_add(P48::ZERO, true);
        assert_eq!(sum, P48::ZERO);
        assert!(carry);

        let (sum, carry) = P48::new(40).wrapping_add(P48::new(2), false);
        assert_eq!(sum.value(), 42);
        assert!(!carry);
    }

    #[test]
    fn p48_signed_interpretation() {
        assert_eq!(P48::ONES.as_signed(), -1);
        assert_eq!(P48::new(5).as_signed(), 5);
    }

    #[test]
    fn p48_bit_access() {
        let p = P48::new(0b1010);
        assert!(!p.bit(0));
        assert!(p.bit(1));
        assert!(p.bit(3));
        assert!(!p.bit(47));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn p48_bit_out_of_range_panics() {
        let _ = P48::ZERO.bit(48);
    }

    #[test]
    fn p48_formatting_is_nonempty() {
        let p = P48::new(0xABC);
        assert_eq!(format!("{p:x}"), "abc");
        assert_eq!(format!("{p:X}"), "ABC");
        assert_eq!(format!("{p:b}"), "101010111100");
        assert_eq!(format!("{p:o}"), "5274");
        assert!(!format!("{p}").is_empty());
        assert!(!format!("{p:?}").is_empty());
    }

    #[test]
    fn p48_bit_ops() {
        let a = P48::new(0b1100);
        let b = P48::new(0b1010);
        assert_eq!((a ^ b).value(), 0b0110);
        assert_eq!((a & b).value(), 0b1000);
        assert_eq!((a | b).value(), 0b1110);
        assert_eq!(a.not().value(), 0xFFFF_FFFF_FFF3);
    }
}
