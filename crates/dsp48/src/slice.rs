//! The assembled, pipelined DSP48E2 slice.
//!
//! ## Timing model
//!
//! [`Dsp48e2::tick`] advances the slice by one clock cycle: the supplied
//! [`DspInputs`] are the port values held during that cycle, the clock edge
//! fires at the end of it, and the returned [`DspOutputs`] are the values
//! observable just after the edge (registered outputs read the freshly
//! latched state; any fully combinational path reads the still-held inputs).
//!
//! Every combinational block evaluates against the *pre-edge* value of each
//! registered upstream signal and the *current* value of each unregistered
//! one, so pipeline latency is an emergent property of the
//! [`RegStages`](crate::attributes::RegStages) configuration rather than a
//! hard-coded constant. With the paper's CAM configuration
//! (`AREG = BREG = CREG = PREG = 1`) an update lands in one cycle and a
//! search key produces its `PATTERNDETECT` two cycles after being presented —
//! exactly Table V of the paper.

use serde::{Deserialize, Serialize};

use crate::alu;
use crate::attributes::Attributes;
use crate::multiplier;
use crate::opmode::{AluMode, CarryInSel, InMode, OpMode, WMux, XMux, YMux, ZMux};
use crate::pattern::PatternDetector;
use crate::word::{truncate, A_WIDTH, B_WIDTH, D_WIDTH, P48};

/// Per-bank clock enables. A deasserted enable holds the bank's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockEnables {
    /// A1/A2 registers.
    pub a: bool,
    /// B1/B2 registers.
    pub b: bool,
    /// C register.
    pub c: bool,
    /// D register.
    pub d: bool,
    /// AD (pre-adder) register.
    pub ad: bool,
    /// M (multiplier) register.
    pub m: bool,
    /// P register (and the pattern-detect flops that ride with it).
    pub p: bool,
    /// Control registers (OPMODE/ALUMODE/INMODE/CARRYINSEL).
    pub ctrl: bool,
}

impl ClockEnables {
    /// All banks enabled.
    #[must_use]
    pub fn all() -> Self {
        ClockEnables {
            a: true,
            b: true,
            c: true,
            d: true,
            ad: true,
            m: true,
            p: true,
            ctrl: true,
        }
    }

    /// All banks held (no state change on the edge).
    #[must_use]
    pub fn none() -> Self {
        ClockEnables {
            a: false,
            b: false,
            c: false,
            d: false,
            ad: false,
            m: false,
            p: false,
            ctrl: false,
        }
    }
}

impl Default for ClockEnables {
    fn default() -> Self {
        ClockEnables::all()
    }
}

/// Per-bank synchronous resets. An asserted reset clears the bank to zero at
/// the edge (and wins over the clock enable, as in hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Resets {
    /// A1/A2 registers.
    pub a: bool,
    /// B1/B2 registers.
    pub b: bool,
    /// C register.
    pub c: bool,
    /// D register.
    pub d: bool,
    /// AD register.
    pub ad: bool,
    /// M register.
    pub m: bool,
    /// P register and pattern-detect flops.
    pub p: bool,
    /// Control registers.
    pub ctrl: bool,
}

impl Resets {
    /// Reset every bank (the CAM "clear stored contents" signal).
    #[must_use]
    pub fn all() -> Self {
        Resets {
            a: true,
            b: true,
            c: true,
            d: true,
            ad: true,
            m: true,
            p: true,
            ctrl: true,
        }
    }
}

/// Dynamic inputs for one clock cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DspInputs {
    /// A port (30 bits; truncated on use).
    pub a: u64,
    /// B port (18 bits).
    pub b: u64,
    /// C port (48 bits).
    pub c: u64,
    /// D port (27 bits).
    pub d: u64,
    /// CARRYIN port.
    pub carry_in: bool,
    /// OPMODE control word.
    pub opmode: OpMode,
    /// ALUMODE control word.
    pub alumode: AluMode,
    /// INMODE control word.
    pub inmode: InMode,
    /// CARRYINSEL control word.
    pub carryinsel: CarryInSel,
    /// PCIN cascade input (from the neighbouring slice's PCOUT).
    pub pcin: P48,
    /// CARRYCASCIN cascade input.
    pub carry_casc_in: bool,
    /// Clock enables.
    pub ce: ClockEnables,
    /// Synchronous resets.
    pub rst: Resets,
}

impl Default for DspInputs {
    fn default() -> Self {
        DspInputs {
            a: 0,
            b: 0,
            c: 0,
            d: 0,
            carry_in: false,
            opmode: OpMode::default(),
            alumode: AluMode::ADD,
            inmode: InMode::DEFAULT,
            carryinsel: CarryInSel::CarryIn,
            pcin: P48::ZERO,
            carry_casc_in: false,
            ce: ClockEnables::all(),
            rst: Resets::default(),
        }
    }
}

/// Outputs observable after the clock edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DspOutputs {
    /// The P output (registered when `PREG = 1`).
    pub p: P48,
    /// Per-segment carry outputs.
    pub carry_out: [bool; 4],
    /// Pattern detector match output.
    pub pattern_detect: bool,
    /// Pattern detector inverse-pattern match output.
    pub pattern_b_detect: bool,
    /// A-register cascade output (follows the A pipeline).
    pub acout: u64,
    /// B-register cascade output.
    pub bcout: u64,
    /// P cascade output (always equals `p`).
    pub pcout: P48,
    /// Carry cascade output.
    pub carry_casc_out: bool,
    /// Sticky-cycle overflow indication (leaving the pattern band upward).
    pub overflow: bool,
    /// Sticky-cycle underflow indication (leaving the pattern band downward).
    pub underflow: bool,
}

/// Internal register state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
struct State {
    a1: u64,
    a2: u64,
    b1: u64,
    b2: u64,
    c: P48,
    d: u64,
    ad: u64,
    m: P48,
    p: P48,
    carry_out: [bool; 4],
    carry_casc_out: bool,
    pattern_detect: bool,
    pattern_b_detect: bool,
    /// One-cycle-delayed pattern detect, used for overflow/underflow.
    pattern_detect_past: bool,
    ctrl_opmode: OpMode,
    ctrl_alumode: AluMode,
    ctrl_inmode: InMode,
    ctrl_carryinsel: CarryInSel,
}

/// A behavioural DSP48E2 slice instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dsp48e2 {
    attrs: Attributes,
    detector: PatternDetector,
    state: State,
    /// Rising edges of the visible pattern-detect output; monitoring
    /// only, never read by the datapath.
    #[cfg(feature = "obs")]
    #[serde(skip)]
    pd_fires: u64,
}

impl Dsp48e2 {
    /// Instantiate a slice with the given static attributes.
    ///
    /// # Panics
    ///
    /// Panics if the attributes are inconsistent; use
    /// [`Attributes::validate`] first for a recoverable check.
    #[must_use]
    pub fn new(attrs: Attributes) -> Self {
        attrs
            .validate()
            .expect("invalid DSP48E2 attribute combination");
        let detector =
            PatternDetector::new(attrs.sel_pattern, attrs.sel_mask, attrs.pattern, attrs.mask);
        Dsp48e2 {
            attrs,
            detector,
            state: State::default(),
            #[cfg(feature = "obs")]
            pd_fires: 0,
        }
    }

    /// Rising edges of the pattern-detect output since construction (a
    /// CAM cell "fires" once per matching search broadcast).
    #[cfg(feature = "obs")]
    #[must_use]
    pub fn pd_fires(&self) -> u64 {
        self.pd_fires
    }

    /// The slice's static attributes.
    #[must_use]
    pub fn attributes(&self) -> &Attributes {
        &self.attrs
    }

    /// Mutable access to the pattern detector (the CAM block rewrites the
    /// mask when reconfiguring the cell type or data width).
    pub fn detector_mut(&mut self) -> &mut PatternDetector {
        &mut self.detector
    }

    /// The pattern detector configuration.
    #[must_use]
    pub fn detector(&self) -> &PatternDetector {
        &self.detector
    }

    /// The current (registered) `A:B` content — the stored CAM word.
    #[must_use]
    pub fn stored_ab(&self) -> P48 {
        P48::from_ab(self.state.a2, self.state.b2)
    }

    /// The current P register value.
    #[must_use]
    pub fn p(&self) -> P48 {
        self.state.p
    }

    /// Advance one clock cycle. See the module documentation for the exact
    /// timing semantics.
    pub fn tick(&mut self, inputs: &DspInputs) -> DspOutputs {
        let regs = self.attrs.regs;
        let s = self.state; // pre-edge snapshot

        // ----- cycle-t values seen by combinational logic --------------
        // Effective control words.
        let (opmode, alumode, inmode, carryinsel) = if regs.ctrl == 0 {
            (
                inputs.opmode,
                inputs.alumode,
                inputs.inmode,
                inputs.carryinsel,
            )
        } else {
            (
                s.ctrl_opmode,
                s.ctrl_alumode,
                s.ctrl_inmode,
                s.ctrl_carryinsel,
            )
        };

        // A/B pipeline outputs during cycle t.
        let a_port = truncate(inputs.a, A_WIDTH);
        let b_port = truncate(inputs.b, B_WIDTH);
        let a1_t = if regs.a == 2 { s.a1 } else { a_port };
        let a2_t = if regs.a == 0 { a_port } else { s.a2 };
        let b1_t = if regs.b == 2 { s.b1 } else { b_port };
        let b2_t = if regs.b == 0 { b_port } else { s.b2 };
        let c_t = if regs.c == 0 { P48::new(inputs.c) } else { s.c };
        let d_t = if regs.d == 0 {
            truncate(inputs.d, D_WIDTH)
        } else {
            s.d
        };

        // Multiplier operand selection (INMODE).
        let a_mult_src = if inmode.select_a1() { a1_t } else { a2_t };
        let b_mult_src = if inmode.select_b1() { b1_t } else { b2_t };
        let ad_comb = multiplier::pre_add(
            a_mult_src,
            d_t,
            inmode.use_d(),
            inmode.negate_a(),
            inmode.gate_a(),
        );
        let ad_t = if regs.ad == 0 { ad_comb } else { s.ad };
        let use_preadd = inmode.use_d() || inmode.negate_a() || inmode.gate_a();
        let a_mult_t = if use_preadd { ad_t } else { a_mult_src };
        let m_comb = multiplier::multiply(a_mult_t, b_mult_src);
        let m_t = if regs.m == 0 { m_comb } else { s.m };

        // Multiplexers.
        let ab_t = P48::from_ab(a2_t, b2_t);
        let x = match opmode.x {
            XMux::Zero => P48::ZERO,
            XMux::M => m_t,
            XMux::P => s.p,
            XMux::Ab => ab_t,
        };
        let y = match opmode.y {
            YMux::Zero => P48::ZERO,
            // Both partial products are modelled in the X leg; the Y leg
            // contributes zero so the ALU sum equals the full product.
            YMux::M => P48::ZERO,
            YMux::Ones => P48::ONES,
            YMux::C => c_t,
        };
        let shift17 = |v: P48| P48::new((v.as_signed() >> 17) as u64);
        let z = match opmode.z {
            ZMux::Zero => P48::ZERO,
            ZMux::Pcin => inputs.pcin,
            ZMux::P | ZMux::PMaccExtend => s.p,
            ZMux::C => c_t,
            ZMux::PcinShift17 => shift17(inputs.pcin),
            ZMux::PShift17 => shift17(s.p),
        };
        let w = match opmode.w {
            WMux::Zero => P48::ZERO,
            WMux::P => s.p,
            WMux::Rnd => self.attrs.rnd,
            WMux::C => c_t,
        };

        let carry_in = match carryinsel {
            CarryInSel::CarryIn => inputs.carry_in,
            CarryInSel::NotPcinMsb => !inputs.pcin.bit(47),
            CarryInSel::CarryCascIn => inputs.carry_casc_in,
            CarryInSel::PcinMsb => inputs.pcin.bit(47),
            CarryInSel::CarryCascOut => s.carry_casc_out,
            CarryInSel::NotPMsb => !s.p.bit(47),
            CarryInSel::AxnorB => {
                let a_msb = (a_mult_t >> 26) & 1 == 1;
                let b_msb = (b_mult_src >> 17) & 1 == 1;
                a_msb == b_msb
            }
            CarryInSel::PMsb => s.p.bit(47),
        };

        let alu_out = alu::evaluate(alumode, self.attrs.simd, w, x, y, z, carry_in);
        let pattern = self.detector.evaluate(alu_out.p, c_t);

        // ----- latch new state at the edge ------------------------------
        let ns = &mut self.state;
        if inputs.rst.a {
            ns.a1 = 0;
            ns.a2 = 0;
        } else if inputs.ce.a {
            if regs.a == 2 {
                ns.a2 = s.a1;
                ns.a1 = a_port;
            } else if regs.a == 1 {
                ns.a2 = a_port;
            }
        }
        if inputs.rst.b {
            ns.b1 = 0;
            ns.b2 = 0;
        } else if inputs.ce.b {
            if regs.b == 2 {
                ns.b2 = s.b1;
                ns.b1 = b_port;
            } else if regs.b == 1 {
                ns.b2 = b_port;
            }
        }
        if inputs.rst.c {
            ns.c = P48::ZERO;
        } else if inputs.ce.c && regs.c == 1 {
            ns.c = P48::new(inputs.c);
        }
        if inputs.rst.d {
            ns.d = 0;
        } else if inputs.ce.d && regs.d == 1 {
            ns.d = truncate(inputs.d, D_WIDTH);
        }
        if inputs.rst.ad {
            ns.ad = 0;
        } else if inputs.ce.ad && regs.ad == 1 {
            ns.ad = ad_comb;
        }
        if inputs.rst.m {
            ns.m = P48::ZERO;
        } else if inputs.ce.m && regs.m == 1 {
            ns.m = m_comb;
        }

        let (p_vis, carry_vis, pat_vis, pat_b_vis, casc_vis);
        if regs.p == 1 {
            if inputs.rst.p {
                ns.p = P48::ZERO;
                ns.carry_out = [false; 4];
                ns.carry_casc_out = false;
                ns.pattern_detect_past = s.pattern_detect;
                ns.pattern_detect = false;
                ns.pattern_b_detect = false;
            } else if inputs.ce.p {
                ns.p = alu_out.p;
                ns.carry_out = alu_out.carry_out;
                ns.carry_casc_out = alu_out.carry_out[3];
                ns.pattern_detect_past = s.pattern_detect;
                ns.pattern_detect = pattern.detect;
                ns.pattern_b_detect = pattern.detect_b;
            }
            p_vis = ns.p;
            carry_vis = ns.carry_out;
            pat_vis = ns.pattern_detect;
            pat_b_vis = ns.pattern_b_detect;
            casc_vis = ns.carry_casc_out;
        } else {
            // Combinational P: visible immediately, nothing latched.
            p_vis = alu_out.p;
            carry_vis = alu_out.carry_out;
            pat_vis = pattern.detect;
            pat_b_vis = pattern.detect_b;
            casc_vis = alu_out.carry_out[3];
            ns.pattern_detect_past = s.pattern_detect;
            ns.pattern_detect = pattern.detect;
        }

        if inputs.rst.ctrl {
            ns.ctrl_opmode = OpMode::default();
            ns.ctrl_alumode = AluMode::ADD;
            ns.ctrl_inmode = InMode::DEFAULT;
            ns.ctrl_carryinsel = CarryInSel::CarryIn;
        } else if inputs.ce.ctrl && regs.ctrl == 1 {
            ns.ctrl_opmode = inputs.opmode;
            ns.ctrl_alumode = inputs.alumode;
            ns.ctrl_inmode = inputs.inmode;
            ns.ctrl_carryinsel = inputs.carryinsel;
        }

        // Overflow/underflow: leaving the pattern-detect band. Simplified
        // from UG579 (which qualifies with P[47:46]); the sign bit of the
        // new P distinguishes the direction.
        let left_band = ns.pattern_detect_past && !pat_vis;
        let overflow = left_band && !p_vis.bit(47);
        let underflow = left_band && p_vis.bit(47);

        #[cfg(feature = "obs")]
        if pat_vis && !s.pattern_detect {
            self.pd_fires += 1;
        }

        DspOutputs {
            p: p_vis,
            carry_out: carry_vis,
            pattern_detect: pat_vis,
            pattern_b_detect: pat_b_vis,
            acout: if regs.a == 0 { a_port } else { ns.a2 },
            bcout: if regs.b == 0 { b_port } else { ns.b2 },
            pcout: p_vis,
            carry_casc_out: casc_vis,
            overflow,
            underflow,
        }
    }

    /// Clear all register state (power-on reset).
    pub fn reset(&mut self) {
        self.state = State::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{RegStages, SimdMode};

    fn cam_slice() -> Dsp48e2 {
        Dsp48e2::new(Attributes::cam_cell())
    }

    fn cam_inputs() -> DspInputs {
        DspInputs {
            opmode: OpMode::CAM_XOR,
            alumode: AluMode::XOR,
            ce: ClockEnables::none(),
            ..DspInputs::default()
        }
    }

    /// Write `data` into A:B with a one-cycle CE pulse.
    fn write(slice: &mut Dsp48e2, data: u64) {
        let (a, b) = P48::new(data).to_ab();
        let mut io = cam_inputs();
        io.a = a;
        io.b = b;
        io.ce.a = true;
        io.ce.b = true;
        slice.tick(&io);
    }

    /// Present `key` on C and run the two-cycle search.
    fn search(slice: &mut Dsp48e2, key: u64) -> bool {
        let mut io = cam_inputs();
        io.c = key;
        io.ce.c = true;
        io.ce.p = true;
        slice.tick(&io); // key latches into CREG
        let mut hold = cam_inputs();
        hold.ce.p = true;
        slice.tick(&hold).pattern_detect // ALU + pattern detect latch
    }

    #[test]
    fn update_takes_one_cycle() {
        let mut s = cam_slice();
        write(&mut s, 0xABCD_EF01_2345);
        assert_eq!(s.stored_ab().value(), 0xABCD_EF01_2345);
    }

    #[test]
    fn search_takes_two_cycles_and_matches() {
        let mut s = cam_slice();
        write(&mut s, 0x0000_DEAD_BEEF);
        assert!(search(&mut s, 0x0000_DEAD_BEEF));
        assert!(!search(&mut s, 0x0000_DEAD_BEE0));
        assert!(search(&mut s, 0x0000_DEAD_BEEF));
    }

    #[test]
    fn search_result_not_valid_one_cycle_early() {
        let mut s = cam_slice();
        write(&mut s, 5);
        // Force P to a mismatching value first so the early read is a miss.
        assert!(!search(&mut s, 6));
        let mut io = cam_inputs();
        io.c = 5;
        io.ce.c = true;
        io.ce.p = true;
        let early = s.tick(&io);
        assert!(
            !early.pattern_detect,
            "match must not appear before the second cycle"
        );
        let mut hold = cam_inputs();
        hold.ce.p = true;
        assert!(s.tick(&hold).pattern_detect);
    }

    #[test]
    fn clock_enable_holds_stored_word() {
        let mut s = cam_slice();
        write(&mut s, 42);
        // Drive different A/B with CE deasserted: content must hold.
        let mut io = cam_inputs();
        io.a = 0xFFFF;
        io.b = 0xFFFF;
        s.tick(&io);
        assert_eq!(s.stored_ab().value(), 42);
        assert!(search(&mut s, 42));
    }

    #[test]
    fn reset_clears_stored_word() {
        let mut s = cam_slice();
        write(&mut s, 7);
        let mut io = cam_inputs();
        io.rst = Resets::all();
        s.tick(&io);
        assert_eq!(s.stored_ab(), P48::ZERO);
        // After reset the cell stores 0; searching 0 matches (valid-bit
        // handling is the CAM block's responsibility, not the slice's).
        assert!(search(&mut s, 0));
    }

    #[test]
    fn masked_search_ternary_behaviour() {
        let mut s = cam_slice();
        s.detector_mut().set_mask(P48::new(0xFF)); // low byte: don't care
        write(&mut s, 0x0012_3400);
        assert!(search(&mut s, 0x0012_345A));
        assert!(search(&mut s, 0x0012_34FF));
        assert!(!search(&mut s, 0x0012_3500));
    }

    #[test]
    fn accumulator_mode_adds() {
        // P <= P + C : OPMODE W=0, X=0, Y=0, Z... use X=AB? Use Z=C, X=P.
        let attrs = Attributes {
            regs: RegStages {
                a: 1,
                b: 1,
                c: 1,
                d: 0,
                ad: 0,
                m: 0,
                p: 1,
                ctrl: 0,
            },
            ..Attributes::cam_cell()
        };
        let mut s = Dsp48e2::new(attrs);
        let opmode = OpMode {
            x: XMux::P,
            y: YMux::Zero,
            z: ZMux::C,
            w: WMux::Zero,
        };
        let mut io = DspInputs {
            opmode,
            alumode: AluMode::ADD,
            c: 10,
            ..DspInputs::default()
        };
        s.tick(&io); // latch C=10; P <= P(0) + C(old 0)
        io.c = 0;
        io.ce.c = false;
        s.tick(&io); // P <= 0 + 10
        assert_eq!(s.p().value(), 10);
        s.tick(&io); // P <= 10 + 10
        assert_eq!(s.p().value(), 20);
    }

    #[test]
    fn multiplier_path_through_mreg() {
        let attrs = Attributes {
            regs: RegStages::full(),
            use_mult: crate::attributes::UseMult::Multiply,
            ..Attributes::default()
        };
        let mut s = Dsp48e2::new(attrs);
        let opmode = OpMode {
            x: XMux::M,
            y: YMux::M,
            z: ZMux::Zero,
            w: WMux::Zero,
        };
        let io = DspInputs {
            a: 6,
            b: 7,
            opmode,
            alumode: AluMode::ADD,
            ..DspInputs::default()
        };
        // Fully pipelined: A1->A2->M->P plus control reg = product appears
        // after 4 ticks (A:2, M:1, P:1) with registered control.
        let mut out = DspOutputs::default();
        for _ in 0..5 {
            out = s.tick(&io);
        }
        assert_eq!(out.p.value(), 42);
    }

    #[test]
    fn pcin_cascade_addition() {
        let attrs = Attributes {
            regs: RegStages {
                a: 1,
                b: 1,
                c: 0,
                d: 0,
                ad: 0,
                m: 0,
                p: 1,
                ctrl: 0,
            },
            ..Attributes::cam_cell()
        };
        let mut s = Dsp48e2::new(attrs);
        let opmode = OpMode {
            x: XMux::Ab,
            y: YMux::Zero,
            z: ZMux::Pcin,
            w: WMux::Zero,
        };
        let (a, b) = P48::new(100).to_ab();
        let io = DspInputs {
            a,
            b,
            pcin: P48::new(23),
            opmode,
            alumode: AluMode::ADD,
            ..DspInputs::default()
        };
        s.tick(&io); // A/B latch
        let out = s.tick(&io); // P <= A:B + PCIN
        assert_eq!(out.p.value(), 123);
        assert_eq!(out.pcout.value(), 123);
    }

    #[test]
    fn shift17_z_path() {
        let attrs = Attributes {
            regs: RegStages::none(),
            ..Attributes::cam_cell()
        };
        let mut s = Dsp48e2::new(attrs);
        let opmode = OpMode {
            x: XMux::Zero,
            y: YMux::Zero,
            z: ZMux::PcinShift17,
            w: WMux::Zero,
        };
        let io = DspInputs {
            pcin: P48::new(1 << 20),
            opmode,
            alumode: AluMode::ADD,
            ..DspInputs::default()
        };
        let out = s.tick(&io);
        assert_eq!(out.p.value(), 1 << 3);
    }

    #[test]
    fn simd_four12_carryouts_visible() {
        let attrs = Attributes {
            regs: RegStages::none(),
            simd: SimdMode::Four12,
            ..Attributes::cam_cell()
        };
        let mut s = Dsp48e2::new(attrs);
        let opmode = OpMode {
            x: XMux::Ab,
            y: YMux::Zero,
            z: ZMux::C,
            w: WMux::Zero,
        };
        let (a, b) = P48::new(0xFFF).to_ab(); // lane 0 = 0xFFF
        let io = DspInputs {
            a,
            b,
            c: 1,
            opmode,
            alumode: AluMode::ADD,
            ..DspInputs::default()
        };
        let out = s.tick(&io);
        assert!(out.carry_out[0]);
        assert_eq!(out.p.value() & 0xFFF, 0);
    }

    #[test]
    fn combinational_p_has_zero_latency() {
        let attrs = Attributes {
            regs: RegStages::none(),
            ..Attributes::cam_cell()
        };
        let mut s = Dsp48e2::new(attrs);
        let (a, b) = P48::new(0xF0F0).to_ab();
        let io = DspInputs {
            a,
            b,
            c: 0xF0F0,
            opmode: OpMode::CAM_XOR,
            alumode: AluMode::XOR,
            ..DspInputs::default()
        };
        let out = s.tick(&io);
        assert_eq!(out.p, P48::ZERO);
        assert!(out.pattern_detect);
    }

    #[test]
    fn registered_control_delays_mode_change() {
        let attrs = Attributes {
            regs: RegStages {
                a: 0,
                b: 0,
                c: 0,
                d: 0,
                ad: 0,
                m: 0,
                p: 0,
                ctrl: 1,
            },
            ..Attributes::cam_cell()
        };
        let mut s = Dsp48e2::new(attrs);
        let (a, b) = P48::new(0xFF).to_ab();
        let io = DspInputs {
            a,
            b,
            c: 0x0F,
            opmode: OpMode::CAM_XOR,
            alumode: AluMode::XOR,
            ..DspInputs::default()
        };
        // First tick still runs the reset-default control word (all-zero
        // muxes, ADD): P = 0.
        let out = s.tick(&io);
        assert_eq!(out.p, P48::ZERO);
        // Second tick uses the registered XOR control.
        let out = s.tick(&io);
        assert_eq!(out.p.value(), 0xF0);
    }

    #[test]
    fn overflow_underflow_on_band_exit() {
        // Accumulate upward past zero: pattern detect (P == 0) goes away.
        let attrs = Attributes {
            regs: RegStages {
                a: 0,
                b: 0,
                c: 0,
                d: 0,
                ad: 0,
                m: 0,
                p: 1,
                ctrl: 0,
            },
            ..Attributes::cam_cell()
        };
        let mut s = Dsp48e2::new(attrs);
        let opmode = OpMode {
            x: XMux::Ab,
            y: YMux::Zero,
            z: ZMux::P,
            w: WMux::Zero,
        };
        let zero = DspInputs {
            opmode,
            alumode: AluMode::ADD,
            ..DspInputs::default()
        };
        let out = s.tick(&zero); // P <= 0, detect
        assert!(out.pattern_detect);
        let (a, b) = P48::new(1).to_ab();
        let one = DspInputs { a, b, ..zero };
        let out = s.tick(&one); // P <= 1, leaves band upward
        assert!(out.overflow);
        assert!(!out.underflow);
    }
}
