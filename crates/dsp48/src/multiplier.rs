//! The 27×18 signed multiplier and 27-bit pre-adder.
//!
//! The CAM configuration leaves this path idle (`USE_MULT = NONE`), but the
//! model is complete so that the same slice type can also be instantiated in
//! arithmetic roles elsewhere in an accelerator (e.g. the paper's user
//! kernels), and so that OPMODE legality around the `M` selections is
//! meaningful.
//!
//! Hardware produces the product as two partial products that are summed in
//! the ALU (X and Y multiplexers both select `M`). The model computes the
//! full product and routes it through the X multiplexer, with the Y
//! multiplexer contributing zero; the ALU sum is therefore identical.

use crate::word::{sign_extend, truncate, AMULT_WIDTH, B_WIDTH, D_WIDTH, P48};

/// Result of the pre-adder stage (`AD = ±A ± D`), 27 bits.
///
/// `a27` is the low 27 bits of the (possibly registered) A port.
#[must_use]
pub fn pre_add(a27: u64, d: u64, use_d: bool, negate_a: bool, gate_a: bool) -> u64 {
    let a = if gate_a {
        0
    } else {
        sign_extend(truncate(a27, AMULT_WIDTH), AMULT_WIDTH)
    };
    let a = if negate_a { -a } else { a };
    let d = if use_d {
        sign_extend(truncate(d, D_WIDTH), D_WIDTH)
    } else {
        0
    };
    truncate((a + d) as u64, AMULT_WIDTH)
}

/// The 27×18 signed multiplication, producing a 45-bit product sign-extended
/// onto the 48-bit datapath.
#[must_use]
pub fn multiply(a_mult: u64, b: u64) -> P48 {
    let a = sign_extend(truncate(a_mult, AMULT_WIDTH), AMULT_WIDTH);
    let b = sign_extend(truncate(b, B_WIDTH), B_WIDTH);
    P48::new((a * b) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_positive_product() {
        assert_eq!(multiply(6, 7).value(), 42);
    }

    #[test]
    fn signed_product_two_negatives() {
        // -1 (27-bit) * -1 (18-bit) = 1.
        let a = (1u64 << AMULT_WIDTH) - 1;
        let b = (1u64 << B_WIDTH) - 1;
        assert_eq!(multiply(a, b).value(), 1);
    }

    #[test]
    fn signed_product_mixed_signs() {
        // -2 * 3 = -6 in 48-bit two's complement.
        let a = truncate((-2i64) as u64, AMULT_WIDTH);
        assert_eq!(multiply(a, 3).as_signed(), -6);
    }

    #[test]
    fn extreme_magnitudes_fit_48_bits() {
        // Most negative 27-bit times most negative 18-bit:
        // 2^26 * 2^17 = 2^43, well inside 48 bits.
        let a = 1u64 << 26;
        let b = 1u64 << 17;
        assert_eq!(multiply(a, b).as_signed(), 1i64 << 43);
    }

    #[test]
    fn pre_adder_combinations() {
        assert_eq!(pre_add(10, 5, true, false, false), 15);
        assert_eq!(pre_add(10, 5, false, false, false), 10);
        assert_eq!(
            pre_add(10, 5, true, true, false),
            truncate((-5i64) as u64, 27)
        );
        assert_eq!(pre_add(10, 5, true, false, true), 5); // A gated off
        assert_eq!(
            pre_add(10, 0, false, true, false),
            truncate((-10i64) as u64, 27)
        );
    }

    #[test]
    fn pre_adder_wraps_at_27_bits() {
        let max = (1u64 << 26) - 1; // most positive 27-bit value
        let wrapped = pre_add(max, 1, true, false, false);
        // Overflows into the sign bit, as hardware does (no saturation).
        assert_eq!(wrapped, 1u64 << 26);
    }
}
