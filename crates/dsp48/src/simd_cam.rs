//! SIMD-packed CAM cells: four 12-bit entries per DSP slice.
//!
//! **Extension beyond the paper.** The paper stores one ≤48-bit entry per
//! slice; for narrow keys that wastes most of the datapath. The DSP48E2's
//! `FOUR12` SIMD mode splits the ALU into four independent 12-bit lanes,
//! so one slice can store four 12-bit entries in `A:B` and compare all
//! four against a (replicated or per-lane) search key in one operation.
//! Per-lane match detection needs a 12-bit NOR per lane in fabric (the
//! pattern detector only covers the full 48-bit word), costing ~4 LUTs per
//! slice — a 4× density improvement for workloads with short keys
//! (port numbers, VLAN tags, small vertex ids).
//!
//! [`SimdCamDsp`] models the slice half bit-accurately (the XOR runs on
//! the real SIMD ALU) and the per-lane NOR as the fabric logic it is.

use serde::{Deserialize, Serialize};

use crate::attributes::{Attributes, SimdMode};
use crate::opmode::{AluMode, OpMode};
use crate::slice::{ClockEnables, Dsp48e2, DspInputs, Resets};
use crate::word::P48;

/// Width of each SIMD lane in bits.
pub const LANE_BITS: u32 = 12;
/// Number of lanes per slice in `FOUR12` mode.
pub const LANES: usize = 4;
/// Maximum storable value per lane.
pub const LANE_MAX: u64 = (1 << LANE_BITS) - 1;

/// One DSP48E2 slice holding four independent 12-bit CAM entries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimdCamDsp {
    slice: Dsp48e2,
    valid: [bool; LANES],
    cycles: u64,
}

impl SimdCamDsp {
    /// Create an empty quad-entry cell.
    #[must_use]
    pub fn new() -> Self {
        let attrs = Attributes {
            simd: SimdMode::Four12,
            ..Attributes::cam_cell()
        };
        SimdCamDsp {
            slice: Dsp48e2::new(attrs),
            valid: [false; LANES],
            cycles: 0,
        }
    }

    fn base_inputs() -> DspInputs {
        DspInputs {
            opmode: OpMode::CAM_XOR,
            alumode: AluMode::XOR,
            ce: ClockEnables::none(),
            ..DspInputs::default()
        }
    }

    /// Cycles consumed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of valid entries (0..=4).
    #[must_use]
    pub fn len(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// The value stored in `lane` (meaningful only when the lane is
    /// valid). Reads the registered `A:B` word without ticking the slice,
    /// so shadow structures can mirror the oracle state.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 4`.
    #[must_use]
    pub fn lane_value(&self, lane: usize) -> u64 {
        assert!(lane < LANES, "lane {lane} out of range");
        (self.slice.stored_ab().value() >> (lane as u32 * LANE_BITS)) & LANE_MAX
    }

    /// Whether `lane` holds a valid entry.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 4`.
    #[must_use]
    pub fn lane_valid(&self, lane: usize) -> bool {
        assert!(lane < LANES, "lane {lane} out of range");
        self.valid[lane]
    }

    /// Whether no lane is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write `value` into `lane`; one cycle (A:B rewrite with the other
    /// lanes preserved, as the fabric write-enable logic would do).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 4` or `value` exceeds 12 bits.
    pub fn write_lane(&mut self, lane: usize, value: u64) {
        assert!(lane < LANES, "lane {lane} out of range");
        assert!(value <= LANE_MAX, "value {value:#x} exceeds 12 bits");
        let current = self.slice.stored_ab().value();
        let shift = lane as u32 * LANE_BITS;
        let cleared = current & !(LANE_MAX << shift);
        let word = P48::new(cleared | (value << shift));
        let (a, b) = word.to_ab();
        let mut io = Self::base_inputs();
        io.a = a;
        io.b = b;
        io.ce.a = true;
        io.ce.b = true;
        self.slice.tick(&io);
        self.valid[lane] = true;
        self.cycles += 1;
    }

    /// Search all four lanes against one broadcast `key`; two cycles.
    /// Returns the per-lane match flags.
    ///
    /// # Panics
    ///
    /// Panics if `key` exceeds 12 bits.
    pub fn search(&mut self, key: u64) -> [bool; LANES] {
        self.search_lanes([key; LANES])
    }

    /// Search each lane against its own key (four independent queries per
    /// slice per operation); two cycles.
    ///
    /// # Panics
    ///
    /// Panics if any key exceeds 12 bits.
    pub fn search_lanes(&mut self, keys: [u64; LANES]) -> [bool; LANES] {
        let mut c = 0u64;
        for (lane, &key) in keys.iter().enumerate() {
            assert!(key <= LANE_MAX, "key {key:#x} exceeds 12 bits");
            c |= key << (lane as u32 * LANE_BITS);
        }
        let mut io = Self::base_inputs();
        io.c = c;
        io.ce.c = true;
        io.ce.p = true;
        self.slice.tick(&io);
        let mut hold = Self::base_inputs();
        hold.ce.p = true;
        let out = self.slice.tick(&hold);
        self.cycles += 2;
        // Fabric per-lane NOR over the XOR result lanes.
        let p = out.p.value();
        let mut flags = [false; LANES];
        for (lane, flag) in flags.iter_mut().enumerate() {
            let lane_bits = (p >> (lane as u32 * LANE_BITS)) & LANE_MAX;
            *flag = lane_bits == 0 && self.valid[lane];
        }
        flags
    }

    /// Clear all four lanes; one cycle.
    pub fn clear(&mut self) {
        let mut io = Self::base_inputs();
        io.rst = Resets::all();
        self.slice.tick(&io);
        self.valid = [false; LANES];
        self.cycles += 1;
    }
}

impl Default for SimdCamDsp {
    fn default() -> Self {
        SimdCamDsp::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_entries_per_slice() {
        let mut cell = SimdCamDsp::new();
        cell.write_lane(0, 0x111);
        cell.write_lane(1, 0x222);
        cell.write_lane(2, 0x333);
        cell.write_lane(3, 0x444);
        assert_eq!(cell.len(), 4);
        let hits = cell.search_lanes([0x111, 0x222, 0x333, 0x444]);
        assert_eq!(hits, [true; 4]);
        let hits = cell.search_lanes([0x222, 0x222, 0x999, 0x444]);
        assert_eq!(hits, [false, true, false, true]);
    }

    #[test]
    fn broadcast_search_via_identical_keys() {
        let mut cell = SimdCamDsp::new();
        cell.write_lane(2, 0xABC);
        let hits = cell.search_lanes([0xABC; 4]);
        assert_eq!(hits, [false, false, true, false]);
    }

    #[test]
    fn lane_writes_preserve_neighbours() {
        let mut cell = SimdCamDsp::new();
        cell.write_lane(0, 0xAAA);
        cell.write_lane(1, 0xBBB);
        cell.write_lane(0, 0xCCC); // overwrite lane 0 only
        let hits = cell.search_lanes([0xCCC, 0xBBB, 0, 0]);
        assert!(hits[0]);
        assert!(hits[1]);
    }

    #[test]
    fn empty_lanes_never_match_zero() {
        let mut cell = SimdCamDsp::new();
        cell.write_lane(1, 0x0);
        let hits = cell.search_lanes([0x0; 4]);
        assert_eq!(hits, [false, true, false, false], "only the valid lane");
    }

    #[test]
    fn clear_invalidates_all_lanes() {
        let mut cell = SimdCamDsp::new();
        cell.write_lane(0, 1);
        cell.write_lane(3, 2);
        cell.clear();
        assert!(cell.is_empty());
        assert_eq!(cell.search_lanes([1, 1, 2, 2]), [false; 4]);
    }

    #[test]
    fn latency_matches_scalar_cell() {
        let mut cell = SimdCamDsp::new();
        let c0 = cell.cycles();
        cell.write_lane(0, 5);
        assert_eq!(cell.cycles() - c0, 1, "update still 1 cycle");
        let c1 = cell.cycles();
        cell.search_lanes([5; 4]);
        assert_eq!(cell.cycles() - c1, 2, "search still 2 cycles");
    }

    #[test]
    #[should_panic(expected = "exceeds 12 bits")]
    fn oversized_value_panics() {
        SimdCamDsp::new().write_lane(0, 0x1000);
    }

    #[test]
    #[should_panic(expected = "lane 4 out of range")]
    fn bad_lane_panics() {
        SimdCamDsp::new().write_lane(4, 0);
    }
}
