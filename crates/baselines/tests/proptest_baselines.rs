//! Property tests: every CAM family agrees with the reference model and
//! with each other under random workloads.

use dsp_cam_baselines::{all_cams, BramCam, Cam, LutCam, LutramCam};
use dsp_cam_core::func::RefCam;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Search(u64),
    Clear,
}

fn ops(width: u32) -> impl Strategy<Value = Vec<Op>> {
    let limit = (1u64 << width) - 1;
    proptest::collection::vec(
        prop_oneof![
            4 => (0..=limit).prop_map(Op::Insert),
            4 => (0..=limit).prop_map(Op::Search),
            1 => Just(Op::Clear),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_families_track_the_reference(script in ops(10)) {
        let entries = 24;
        let mut cams = all_cams(entries, 10);
        let mut oracle = RefCam::new(entries, 10, 0);
        for op in script {
            match op {
                Op::Insert(v) => {
                    let fits = !oracle.is_full();
                    if fits {
                        oracle.insert(v);
                    }
                    for cam in &mut cams {
                        prop_assert_eq!(cam.insert(v).is_ok(), fits, "{}", cam.name());
                    }
                }
                Op::Search(k) => {
                    let expect = oracle.search(k).is_some();
                    for cam in &mut cams {
                        prop_assert_eq!(cam.search(k).is_some(), expect, "{}", cam.name());
                    }
                }
                Op::Clear => {
                    oracle.clear();
                    for cam in &mut cams {
                        cam.clear();
                    }
                }
            }
        }
    }

    #[test]
    fn transposed_tables_equal_register_file(values in proptest::collection::vec(0u64..0x3FFFF, 1..60)) {
        // The LUTRAM and BRAM transposed structures must behave exactly
        // like the plain register file on distinct fill-order addressing.
        let entries = values.len();
        let mut reg = LutCam::new(entries, 18);
        let mut lutram = LutramCam::new(entries, 18);
        let mut bram = BramCam::new(entries, 18);
        for &v in &values {
            reg.insert(v).unwrap();
            lutram.insert(v).unwrap();
            bram.insert(v).unwrap();
        }
        for probe in values.iter().copied().chain(0..32) {
            let expect = reg.search(probe);
            prop_assert_eq!(lutram.search(probe), expect, "LUTRAM at {:#x}", probe);
            prop_assert_eq!(bram.search(probe), expect, "BRAM at {:#x}", probe);
        }
    }

    #[test]
    fn resource_models_are_monotone_in_entries(small in 8usize..64, factor in 2usize..6) {
        let big = small * factor;
        for (s, b) in [
            (LutCam::new(small, 32).resources(), LutCam::new(big, 32).resources()),
            (LutramCam::new(small, 32).resources(), LutramCam::new(big, 32).resources()),
            (BramCam::new(small, 32).resources(), BramCam::new(big, 32).resources()),
        ] {
            prop_assert!(b.lut >= s.lut);
            prop_assert!(b.bram36 >= s.bram36);
        }
    }

    #[test]
    fn frequency_models_never_increase_with_size(small in 8usize..128, factor in 2usize..8) {
        let big = small * factor;
        let families: Vec<(f64, f64)> = vec![
            (LutCam::new(small, 32).frequency_mhz(), LutCam::new(big, 32).frequency_mhz()),
            (LutramCam::new(small, 32).frequency_mhz(), LutramCam::new(big, 32).frequency_mhz()),
            (BramCam::new(small, 32).frequency_mhz(), BramCam::new(big, 32).frequency_mhz()),
        ];
        for (f_small, f_big) in families {
            prop_assert!(f_big <= f_small + 1e-9);
            prop_assert!(f_big > 0.0);
        }
    }
}
