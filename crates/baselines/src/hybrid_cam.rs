//! A hybrid SRAM+LUT CAM (REST-CAM style).
//!
//! The entries live in one (or a few) true-dual-port BRAMs organised as a
//! transposed 512-deep array; a thin LUT layer reduces the read-out to a
//! match flag. The footprint is tiny — REST-CAM's published 72×28 point
//! costs 130 LUTs and a single BRAM — but every update rewrites the whole
//! 512-row transposed column serially: 513 cycles, the worst update path
//! in the survey, and the reason hybrid designs are unusable for dynamic
//! data (Section II-A).

use dsp_cam_core::error::CamError;
use fpga_model::ResourceUsage;

use crate::cam::{Cam, Geometry};

const RAM_DEPTH: u64 = 512;

/// A hybrid BRAM-storage, LUT-reduce CAM.
#[derive(Debug, Clone)]
pub struct HybridCam {
    geometry: Geometry,
    entries: Vec<Option<u64>>,
    fill: usize,
}

impl HybridCam {
    /// Create a hybrid CAM of `entries` × `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `width` is outside `1..=64`.
    #[must_use]
    pub fn new(entries: usize, width: u32) -> Self {
        let geometry = Geometry::new(entries, width);
        HybridCam {
            geometry,
            entries: vec![None; entries],
            fill: 0,
        }
    }
}

impl Cam for HybridCam {
    fn name(&self) -> &'static str {
        "Hybrid SRAM+LUT CAM"
    }

    fn insert(&mut self, value: u64) -> Result<(), CamError> {
        self.geometry.check_value(value)?;
        if self.fill >= self.entries.len() {
            return Err(CamError::Full {
                rejected: 1,
                group: None,
            });
        }
        self.entries[self.fill] = Some(value);
        self.fill += 1;
        Ok(())
    }

    fn search(&mut self, key: u64) -> Option<usize> {
        self.entries
            .iter()
            .position(|&e| e == Some(key & self.geometry.value_limit()))
    }

    fn clear(&mut self) {
        self.entries.fill(None);
        self.fill = 0;
    }

    fn capacity(&self) -> usize {
        self.entries.len()
    }

    fn len(&self) -> usize {
        self.fill
    }

    fn update_latency(&self) -> u64 {
        // Serial rewrite of the transposed 512-row column — REST-CAM's 513.
        RAM_DEPTH + 1
    }

    fn search_latency(&self) -> u64 {
        // BRAM read + LUT reduce + encode — REST-CAM's published 5.
        5
    }

    fn resources(&self) -> ResourceUsage {
        let bits = self.geometry.bits();
        ResourceUsage {
            lut: 100 + self.geometry.entries as u64 / 2,
            ff: self.geometry.entries as u64,
            bram36: bits.div_ceil(36 * 1024).max(1),
            uram: 0,
            dsp: 0,
        }
    }

    fn frequency_mhz(&self) -> f64 {
        let doublings = (self.geometry.entries as f64).log2();
        (90.0 - 6.5 * doublings).max(40.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let mut cam = HybridCam::new(72, 28);
        cam.insert(0x0AB_CDEF).unwrap();
        assert_eq!(cam.search(0x0AB_CDEF), Some(0));
        assert_eq!(cam.search(1), None);
    }

    #[test]
    fn rest_cam_calibration_point() {
        let cam = HybridCam::new(72, 28);
        assert_eq!(cam.update_latency(), 513);
        assert_eq!(cam.search_latency(), 5);
        let r = cam.resources();
        assert_eq!(r.bram36, 1);
        assert!((100..=200).contains(&r.lut), "{} vs published 130", r.lut);
        let f = cam.frequency_mhz();
        assert!((40.0..70.0).contains(&f), "{f} vs published 50");
    }

    #[test]
    fn capacity_enforced() {
        let mut cam = HybridCam::new(2, 8);
        cam.insert(1).unwrap();
        cam.insert(2).unwrap();
        assert!(matches!(cam.insert(3), Err(CamError::Full { .. })));
        cam.clear();
        cam.insert(3).unwrap();
        assert_eq!(cam.search(3), Some(0));
    }

    #[test]
    fn bram_grows_with_bits() {
        assert!(HybridCam::new(4096, 48).resources().bram36 > 1);
    }
}
