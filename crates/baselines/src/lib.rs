//! # dsp-cam-baselines — competing FPGA CAM implementations
//!
//! Functional, resource- and latency-modelled implementations of the CAM
//! families the paper compares against (Table I and Figure 1):
//!
//! * [`lut_cam::LutCam`] — the classic register-and-comparator CAM:
//!   single-cycle search, brutal LUT cost;
//! * [`lutram_cam::LutramCam`] — a transposed LUTRAM TCAM in the
//!   Frac-TCAM/DURE style: fast search, slow `2^k`-row update walk;
//! * [`bram_cam::BramCam`] — a transposed block-RAM TCAM in the
//!   HP-TCAM/PUMP-CAM style: cheap LUTs, heavy BRAM, multi-cycle search;
//! * [`hybrid_cam::HybridCam`] — a REST-CAM-style hybrid: tiny footprint,
//!   extremely slow updates;
//! * [`dsp_queue::DspCascadeCam`] — Preußer et al.'s DSP cascade
//!   ("content-addressable update queue"): single-cycle update at the head,
//!   search latency proportional to the cascade length;
//! * [`ours::DspCamAdapter`] — the paper's design (from `dsp-cam-core`)
//!   behind the same [`Cam`] trait, so every comparison in the benches is
//!   apples-to-apples.
//!
//! All implementations are *functional* — they really store and match
//! entries — and additionally report the resource/latency/frequency model
//! that their published reference point calibrates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bram_cam;
pub mod cam;
pub mod dsp_queue;
pub mod fidelity;
pub mod hybrid_cam;
pub mod lut_cam;
pub mod lutram_cam;
pub mod ours;

pub use bram_cam::BramCam;
pub use cam::Cam;
pub use dsp_queue::DspCascadeCam;
pub use fidelity::{survey_fidelity, FidelityRow};
pub use hybrid_cam::HybridCam;
pub use lut_cam::LutCam;
pub use lutram_cam::LutramCam;
pub use ours::DspCamAdapter;

/// Construct one instance of every baseline (plus ours) at the same
/// geometry, for sweep-style benches and differential tests.
///
/// # Panics
///
/// Panics if the geometry is invalid for the paper's design (the baselines
/// accept any geometry).
#[must_use]
pub fn all_cams(entries: usize, width: u32) -> Vec<Box<dyn Cam>> {
    vec![
        Box::new(LutCam::new(entries, width)),
        Box::new(LutramCam::new(entries, width)),
        Box::new(BramCam::new(entries, width)),
        Box::new(HybridCam::new(entries, width)),
        Box::new(DspCascadeCam::new(entries, width)),
        Box::new(DspCamAdapter::new(entries, width)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cams_agree_functionally() {
        let mut cams = all_cams(64, 16);
        for cam in &mut cams {
            for v in [5u64, 1000, 42, 5] {
                cam.insert(v).unwrap();
            }
        }
        for cam in &mut cams {
            let name = cam.name();
            assert!(cam.search(42).is_some(), "{name} missed 42");
            assert!(cam.search(7).is_none(), "{name} ghost-hit 7");
            assert_eq!(cam.len(), 4, "{name}");
        }
    }

    #[test]
    fn all_cams_report_models() {
        for cam in all_cams(128, 32) {
            let name = cam.name();
            assert!(!name.is_empty());
            assert!(cam.frequency_mhz() > 0.0, "{name}");
            assert!(cam.search_latency() >= 1, "{name}");
            assert!(cam.update_latency() >= 1, "{name}");
            let r = cam.resources();
            assert!(
                r.lut + r.bram36 + r.dsp > 0,
                "{name} reports zero resources"
            );
        }
    }
}
