//! A transposed block-RAM TCAM (HP-TCAM / PUMP-CAM style).
//!
//! Identical transposition to the LUTRAM design, but with 9-bit chunks so
//! each chunk table fills a 512-row BRAM. BRAMs are plentiful, so large
//! capacities are reachable — at the cost of a multi-cycle search pipeline
//! through the width partitions and an update walk over 512 rows that
//! even multi-pumping (reading the array at 4× the core clock, as
//! PUMP-CAM does) only softens to ~129 cycles.
//!
//! ## Model calibration
//!
//! `BRAM ≈ ceil(width/9) × ceil(entries/72)` (each 36 Kb BRAM holds a
//! 512 × 72 slice of the transposed table); HP-TCAM's 512×36 point lands
//! at 32 against the published 56 (they burn extra BRAM on update
//! buffering — within the 2× band the comparison needs). Update is the
//! 512-row walk divided by the 4× pump plus launch: `512/4 + 1 = 129`,
//! exactly PUMP-CAM's published figure. Frequency follows the BRAM fabric
//! and the AND-reduce across chunks.

use dsp_cam_core::error::CamError;
use fpga_model::ResourceUsage;

use crate::cam::{Cam, Geometry};

const CHUNK_BITS: u32 = 9;
const CHUNK_ROWS: usize = 1 << CHUNK_BITS;

/// A transposed BRAM TCAM.
#[derive(Debug, Clone)]
pub struct BramCam {
    geometry: Geometry,
    /// `tables[chunk][row]` = bitmask of entries whose chunk equals `row`.
    tables: Vec<Vec<Vec<u64>>>,
    valid: Vec<u64>,
    fill: usize,
}

fn chunks_of(width: u32) -> usize {
    width.div_ceil(CHUNK_BITS) as usize
}

impl BramCam {
    /// Create a BRAM CAM of `entries` × `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `width` is outside `1..=64`.
    #[must_use]
    pub fn new(entries: usize, width: u32) -> Self {
        let geometry = Geometry::new(entries, width);
        let words = entries.div_ceil(64);
        BramCam {
            geometry,
            tables: vec![vec![vec![0u64; words]; CHUNK_ROWS]; chunks_of(width)],
            valid: vec![0u64; words],
            fill: 0,
        }
    }

    fn chunk_value(&self, value: u64, chunk: usize) -> usize {
        let shift = chunk as u32 * CHUNK_BITS;
        if shift >= 64 {
            // Payloads are carried in u64; survey geometries wider than 64
            // bits have all-zero upper chunks.
            0
        } else {
            ((value >> shift) & (CHUNK_ROWS as u64 - 1)) as usize
        }
    }
}

impl Cam for BramCam {
    fn name(&self) -> &'static str {
        "BRAM transposed TCAM"
    }

    fn insert(&mut self, value: u64) -> Result<(), CamError> {
        self.geometry.check_value(value)?;
        if self.fill >= self.geometry.entries {
            return Err(CamError::Full {
                rejected: 1,
                group: None,
            });
        }
        let entry = self.fill;
        for chunk in 0..self.tables.len() {
            let hit_row = self.chunk_value(value, chunk);
            for (row, mask) in self.tables[chunk].iter_mut().enumerate() {
                mask[entry / 64] &= !(1 << (entry % 64));
                if row == hit_row {
                    mask[entry / 64] |= 1 << (entry % 64);
                }
            }
        }
        self.valid[entry / 64] |= 1 << (entry % 64);
        self.fill += 1;
        Ok(())
    }

    fn search(&mut self, key: u64) -> Option<usize> {
        let key = key & self.geometry.value_limit();
        let words = self.valid.len();
        let mut acc = self.valid.clone();
        for chunk in 0..self.tables.len() {
            let row = &self.tables[chunk][self.chunk_value(key, chunk)];
            for w in 0..words {
                acc[w] &= row[w];
            }
        }
        for (w, &word) in acc.iter().enumerate() {
            if word != 0 {
                let idx = w * 64 + word.trailing_zeros() as usize;
                if idx < self.geometry.entries {
                    return Some(idx);
                }
            }
        }
        None
    }

    fn clear(&mut self) {
        for chunk in &mut self.tables {
            for row in chunk {
                row.fill(0);
            }
        }
        self.valid.fill(0);
        self.fill = 0;
    }

    fn capacity(&self) -> usize {
        self.geometry.entries
    }

    fn len(&self) -> usize {
        self.fill
    }

    fn update_latency(&self) -> u64 {
        // 512-row walk at a 4x multi-pumped array clock, plus launch.
        CHUNK_ROWS as u64 / 4 + 1
    }

    fn search_latency(&self) -> u64 {
        // BRAM read (2, registered output) + AND-reduce + encoder —
        // HP-TCAM's published 5.
        5
    }

    fn resources(&self) -> ResourceUsage {
        let brams =
            chunks_of(self.geometry.width) as u64 * (self.geometry.entries as u64).div_ceil(72);
        ResourceUsage {
            lut: self.geometry.entries as u64 * 8 + 1500, // AND/encode fabric
            ff: self.geometry.entries as u64 * 4,
            bram36: brams,
            uram: 0,
            dsp: 0,
        }
    }

    fn frequency_mhz(&self) -> f64 {
        let doublings = (self.geometry.entries as f64).log2();
        (250.0 - 15.0 * doublings).max(60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transposed_semantics() {
        let mut cam = BramCam::new(80, 36);
        cam.insert(0x8_1234_5678).unwrap();
        cam.insert(0x1_0000_0001).unwrap();
        assert_eq!(cam.search(0x1_0000_0001), Some(1));
        assert_eq!(cam.search(0x8_1234_5678), Some(0));
        assert_eq!(cam.search(0x8_1234_5679), None);
    }

    #[test]
    fn update_latency_matches_pump_cam() {
        assert_eq!(BramCam::new(1024, 140).update_latency(), 129);
    }

    #[test]
    fn search_latency_matches_hp_tcam() {
        assert_eq!(BramCam::new(512, 36).search_latency(), 5);
    }

    #[test]
    fn bram_model_within_survey_band() {
        // HP-TCAM 512x36 published 56 BRAM; the structural model gives 32
        // (no update double-buffering). Within the 2x comparison band.
        let r = BramCam::new(512, 36).resources();
        assert!((28..=64).contains(&r.bram36), "{}", r.bram36);
        assert_eq!(r.dsp, 0);
    }

    #[test]
    fn frequency_near_hp_tcam() {
        let f = BramCam::new(512, 36).frequency_mhz();
        assert!((90.0..160.0).contains(&f), "{f} vs published 118");
    }

    #[test]
    fn fill_capacity_and_clear() {
        let mut cam = BramCam::new(3, 9);
        for v in [1u64, 2, 3] {
            cam.insert(v).unwrap();
        }
        assert!(matches!(cam.insert(4), Err(CamError::Full { .. })));
        cam.clear();
        assert!(cam.is_empty());
        assert_eq!(cam.search(2), None);
    }

    #[test]
    fn wide_value_rejected() {
        let mut cam = BramCam::new(4, 9);
        assert!(matches!(
            cam.insert(0x200),
            Err(CamError::ValueTooWide { .. })
        ));
    }
}
