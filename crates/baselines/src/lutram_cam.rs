//! A transposed LUTRAM TCAM (Frac-TCAM / DURE style).
//!
//! The key is split into 6-bit chunks; each chunk owns a 64-row LUTRAM
//! table whose row `v` holds a bitmask of the entries whose chunk equals
//! `v`. A search reads one row per chunk (all chunks in parallel) and ANDs
//! the bitmasks — one cycle plus the encoder. An *update*, however, must
//! walk all 64 rows of every chunk table to clear the entry's old bit
//! before setting the new one: the `2^k`-row update walk that makes
//! LUTRAM CAMs poor at dynamic workloads (DURE's published 65-cycle
//! update).
//!
//! ## Model calibration
//!
//! `LUTs ≈ 0.6 × entries × ceil(width/6)` (the 0.6 factor is the
//! fracturable dual-output packing Frac-TCAM exploits; 1024×160 lands near
//! its published 16 384). Frequency starts near the LUTRAM fabric limit
//! and falls ~12 MHz per doubling of entries (1024 entries ≈ Frac-TCAM's
//! published 357 MHz).

use dsp_cam_core::error::CamError;
use fpga_model::ResourceUsage;

use crate::cam::{Cam, Geometry};

const CHUNK_BITS: u32 = 6;
const CHUNK_ROWS: usize = 1 << CHUNK_BITS;

/// A transposed LUTRAM TCAM.
#[derive(Debug, Clone)]
pub struct LutramCam {
    geometry: Geometry,
    /// `tables[chunk][row]` = bitmask of entries whose chunk equals `row`.
    tables: Vec<Vec<Vec<u64>>>,
    valid: Vec<u64>,
    fill: usize,
}

fn chunks_of(width: u32) -> usize {
    width.div_ceil(CHUNK_BITS) as usize
}

impl LutramCam {
    /// Create a LUTRAM CAM of `entries` × `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `width` is outside `1..=64`.
    #[must_use]
    pub fn new(entries: usize, width: u32) -> Self {
        let geometry = Geometry::new(entries, width);
        let words = entries.div_ceil(64);
        LutramCam {
            geometry,
            tables: vec![vec![vec![0u64; words]; CHUNK_ROWS]; chunks_of(width)],
            valid: vec![0u64; words],
            fill: 0,
        }
    }

    fn chunk_value(&self, value: u64, chunk: usize) -> usize {
        let shift = chunk as u32 * CHUNK_BITS;
        if shift >= 64 {
            // Payloads are carried in u64; survey geometries wider than 64
            // bits have all-zero upper chunks.
            0
        } else {
            ((value >> shift) & (CHUNK_ROWS as u64 - 1)) as usize
        }
    }

    fn set_bit(mask: &mut [u64], entry: usize) {
        mask[entry / 64] |= 1 << (entry % 64);
    }
}

impl Cam for LutramCam {
    fn name(&self) -> &'static str {
        "LUTRAM transposed TCAM"
    }

    fn insert(&mut self, value: u64) -> Result<(), CamError> {
        self.geometry.check_value(value)?;
        if self.fill >= self.geometry.entries {
            return Err(CamError::Full {
                rejected: 1,
                group: None,
            });
        }
        let entry = self.fill;
        // The hardware walk: every row of every chunk table is visited to
        // position the entry's bit (clear everywhere, set on the matching
        // row).
        for chunk in 0..self.tables.len() {
            let hit_row = self.chunk_value(value, chunk);
            for (row, mask) in self.tables[chunk].iter_mut().enumerate() {
                mask[entry / 64] &= !(1 << (entry % 64));
                if row == hit_row {
                    Self::set_bit(mask, entry);
                }
            }
        }
        Self::set_bit(&mut self.valid, entry);
        self.fill += 1;
        Ok(())
    }

    fn search(&mut self, key: u64) -> Option<usize> {
        let key = key & self.geometry.value_limit();
        let words = self.valid.len();
        let mut acc = self.valid.clone();
        for chunk in 0..self.tables.len() {
            let row = &self.tables[chunk][self.chunk_value(key, chunk)];
            for w in 0..words {
                acc[w] &= row[w];
            }
        }
        for (w, &word) in acc.iter().enumerate() {
            if word != 0 {
                let idx = w * 64 + word.trailing_zeros() as usize;
                if idx < self.geometry.entries {
                    return Some(idx);
                }
            }
        }
        None
    }

    fn clear(&mut self) {
        for chunk in &mut self.tables {
            for row in chunk {
                row.fill(0);
            }
        }
        self.valid.fill(0);
        self.fill = 0;
    }

    fn capacity(&self) -> usize {
        self.geometry.entries
    }

    fn len(&self) -> usize {
        self.fill
    }

    fn update_latency(&self) -> u64 {
        // 64-row walk plus pipeline in/out — DURE's 65-cycle figure.
        CHUNK_ROWS as u64 + 1
    }

    fn search_latency(&self) -> u64 {
        1
    }

    fn resources(&self) -> ResourceUsage {
        let chunk_luts =
            (0.6 * self.geometry.entries as f64 * chunks_of(self.geometry.width) as f64) as u64;
        ResourceUsage {
            lut: chunk_luts + self.geometry.entries as u64 / 2,
            ff: self.geometry.entries as u64,
            bram36: 0,
            uram: 0,
            dsp: 0,
        }
    }

    fn frequency_mhz(&self) -> f64 {
        let doublings = (self.geometry.entries as f64).log2();
        (480.0 - 12.0 * doublings).max(80.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transposed_semantics() {
        let mut cam = LutramCam::new(100, 24);
        cam.insert(0xABCDEF).unwrap();
        cam.insert(0x123456).unwrap();
        assert_eq!(cam.search(0x123456), Some(1));
        assert_eq!(cam.search(0xABCDEF), Some(0));
        assert_eq!(cam.search(0xABCDEE), None);
    }

    #[test]
    fn entries_across_word_boundaries() {
        let mut cam = LutramCam::new(130, 8);
        for v in 0..130u64 {
            cam.insert(v % 200).unwrap();
        }
        assert_eq!(cam.search(129), Some(129));
        assert_eq!(cam.search(0), Some(0));
        assert!(matches!(cam.insert(1), Err(CamError::Full { .. })));
    }

    #[test]
    fn clear_resets_tables() {
        let mut cam = LutramCam::new(8, 12);
        cam.insert(0x5A5).unwrap();
        cam.clear();
        assert_eq!(cam.search(0x5A5), None);
        assert!(cam.is_empty());
        cam.insert(0x111).unwrap();
        assert_eq!(cam.search(0x111), Some(0));
    }

    #[test]
    fn update_walk_matches_dure() {
        // DURE's published update latency is 65 cycles on a 64-row walk.
        assert_eq!(LutramCam::new(1024, 36).update_latency(), 65);
        assert_eq!(LutramCam::new(1024, 36).search_latency(), 1);
    }

    #[test]
    fn resource_model_near_frac_tcam() {
        // Frac-TCAM: 1024x160 -> 16384 LUTs published.
        let r = LutramCam::new(1024, 160).resources();
        assert!(
            (12_000..22_000).contains(&r.lut),
            "LUT model {} too far from the published 16384",
            r.lut
        );
        assert_eq!(r.bram36, 0);
    }

    #[test]
    fn frequency_near_frac_tcam() {
        let f = LutramCam::new(1024, 160).frequency_mhz();
        assert!((300.0..420.0).contains(&f), "{f} vs published 357");
    }

    #[test]
    fn zero_value_entry_is_findable() {
        let mut cam = LutramCam::new(4, 16);
        cam.insert(0).unwrap();
        assert_eq!(cam.search(0), Some(0));
        assert_eq!(cam.search(1), None);
    }
}
