//! The prior DSP-slice CAM: Preußer et al.'s content-addressable update
//! queue (FPL 2020).
//!
//! Entries live in a *cascade* of DSP slices chained through their
//! PCIN/PCOUT ports. Inserting at the head is a single shift — updates are
//! cheap — but a search key must ripple down the whole cascade, one
//! 24-entry segment per pipeline stage, so search latency grows with
//! capacity: the published 1000×24 configuration takes 42 cycles. This is
//! precisely the "prolonged search latency" the paper cites as the reason
//! the existing DSP design is unsuitable for data-intensive applications
//! (Section I), and the design our architecture's constant 8-cycle search
//! is contrasted against.

use dsp_cam_core::error::CamError;
use fpga_model::ResourceUsage;

use crate::cam::{Cam, Geometry};

/// Entries scanned per cascade pipeline stage (two 24-bit halves of each
/// 48-bit chain segment).
const ENTRIES_PER_STAGE: u64 = 24;

/// Preußer et al.'s DSP cascade CAM.
#[derive(Debug, Clone)]
pub struct DspCascadeCam {
    geometry: Geometry,
    /// The cascade, head first (newest entry at index 0).
    chain: Vec<u64>,
}

impl DspCascadeCam {
    /// Create a cascade CAM of `entries` × `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `width` is outside `1..=64`.
    #[must_use]
    pub fn new(entries: usize, width: u32) -> Self {
        DspCascadeCam {
            geometry: Geometry::new(entries, width),
            chain: Vec::with_capacity(entries),
        }
    }
}

impl Cam for DspCascadeCam {
    fn name(&self) -> &'static str {
        "DSP cascade CAM (Preusser et al.)"
    }

    fn insert(&mut self, value: u64) -> Result<(), CamError> {
        self.geometry.check_value(value)?;
        if self.chain.len() >= self.geometry.entries {
            return Err(CamError::Full {
                rejected: 1,
                group: None,
            });
        }
        // New entries shift in at the head of the cascade.
        self.chain.insert(0, value);
        Ok(())
    }

    fn search(&mut self, key: u64) -> Option<usize> {
        let key = key & self.geometry.value_limit();
        // The key ripples down the cascade; the fill-order address of entry
        // i (i-th inserted) is len-1-i positions from the head.
        self.chain
            .iter()
            .position(|&v| v == key)
            .map(|head_pos| self.chain.len() - 1 - head_pos)
    }

    fn clear(&mut self) {
        self.chain.clear();
    }

    fn capacity(&self) -> usize {
        self.geometry.entries
    }

    fn len(&self) -> usize {
        self.chain.len()
    }

    fn update_latency(&self) -> u64 {
        // A head insert is one shift of the cascade.
        1
    }

    fn search_latency(&self) -> u64 {
        // One stage per 24 entries of cascade — 1000 entries = 42 stages.
        (self.geometry.entries as u64).div_ceil(ENTRIES_PER_STAGE)
    }

    fn resources(&self) -> ResourceUsage {
        // ~1 DSP per entry plus ~2% chain plumbing (1000 -> 1022 published).
        let dsp = self.geometry.entries as u64 + (self.geometry.entries as u64) * 22 / 1000;
        ResourceUsage {
            lut: 2_843 * self.geometry.entries as u64 / 1000,
            ff: self.geometry.entries as u64 * 2,
            bram36: 0,
            uram: 0,
            dsp,
        }
    }

    fn frequency_mhz(&self) -> f64 {
        // The cascade is hard-wired silicon: frequency holds at the DSP
        // column limit nearly independent of depth.
        350.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_search_fill_order_addresses() {
        let mut cam = DspCascadeCam::new(8, 24);
        cam.insert(10).unwrap();
        cam.insert(20).unwrap();
        cam.insert(30).unwrap();
        assert_eq!(cam.search(10), Some(0));
        assert_eq!(cam.search(20), Some(1));
        assert_eq!(cam.search(30), Some(2));
        assert_eq!(cam.search(40), None);
    }

    #[test]
    fn published_1000_entry_point() {
        let cam = DspCascadeCam::new(1000, 24);
        assert_eq!(cam.search_latency(), 42, "published FPL'20 figure");
        assert_eq!(cam.update_latency(), 1);
        let r = cam.resources();
        assert_eq!(r.dsp, 1022, "published DSP count");
        assert_eq!(r.lut, 2843, "published LUT count");
        assert_eq!(cam.frequency_mhz(), 350.0);
    }

    #[test]
    fn search_latency_scales_with_depth() {
        assert_eq!(DspCascadeCam::new(24, 24).search_latency(), 1);
        assert_eq!(DspCascadeCam::new(25, 24).search_latency(), 2);
        assert!(
            DspCascadeCam::new(9728, 24).search_latency()
                > DspCascadeCam::new(1000, 24).search_latency()
        );
    }

    #[test]
    fn capacity_and_clear() {
        let mut cam = DspCascadeCam::new(2, 8);
        cam.insert(1).unwrap();
        cam.insert(2).unwrap();
        assert!(matches!(cam.insert(3), Err(CamError::Full { .. })));
        cam.clear();
        assert!(cam.is_empty());
    }

    #[test]
    fn duplicate_reports_newest_is_not_first() {
        // Fill-order addressing: the oldest matching entry has the lowest
        // address, even though the newest sits at the cascade head.
        let mut cam = DspCascadeCam::new(4, 8);
        cam.insert(7).unwrap();
        cam.insert(9).unwrap();
        cam.insert(7).unwrap();
        // Head-first scan finds the newest 7 first, whose fill address is 2.
        assert_eq!(cam.search(7), Some(2));
    }
}
