//! The common CAM interface implemented by every design family.

use dsp_cam_core::error::CamError;
use fpga_model::ResourceUsage;

/// An exact-match CAM with a fill-order address space, plus its
/// implementation model (latency, resources, achievable frequency).
///
/// The trait is object-safe so sweeps can hold `Box<dyn Cam>` collections.
///
/// # Examples
///
/// ```
/// use dsp_cam_baselines::{all_cams, Cam};
///
/// for mut cam in all_cams(16, 12) {
///     cam.insert(0x5A5).unwrap();
///     assert_eq!(cam.search(0x5A5), Some(0), "{}", cam.name());
///     assert!(cam.frequency_mhz() > 0.0);
/// }
/// ```
pub trait Cam {
    /// Human-readable design-family name.
    fn name(&self) -> &'static str;

    /// Store a value at the next free address.
    ///
    /// # Errors
    ///
    /// * [`CamError::Full`] when no free entry remains;
    /// * [`CamError::ValueTooWide`] when the value exceeds the data width.
    fn insert(&mut self, value: u64) -> Result<(), CamError>;

    /// Lowest matching address for `key`, if any.
    fn search(&mut self, key: u64) -> Option<usize>;

    /// Clear all entries.
    fn clear(&mut self);

    /// Total entries the CAM can hold.
    fn capacity(&self) -> usize;

    /// Entries currently stored.
    fn len(&self) -> usize;

    /// Whether no entries are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// End-to-end update latency in cycles at this geometry.
    fn update_latency(&self) -> u64;

    /// End-to-end search latency in cycles at this geometry.
    fn search_latency(&self) -> u64;

    /// Modelled resource consumption at this geometry.
    fn resources(&self) -> ResourceUsage;

    /// Modelled achievable clock frequency in MHz at this geometry.
    fn frequency_mhz(&self) -> f64;

    /// Search initiation interval in cycles (1 = fully pipelined; the DSP
    /// cascade cannot overlap searches and reports its full latency).
    fn search_interval(&self) -> u64 {
        1
    }

    /// Searches per second at the modelled frequency.
    fn search_throughput_mops(&self) -> f64 {
        self.frequency_mhz() / self.search_interval() as f64
    }
}

/// Shared width bookkeeping for the baseline implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Geometry {
    pub entries: usize,
    pub width: u32,
}

impl Geometry {
    pub(crate) fn new(entries: usize, width: u32) -> Self {
        assert!(entries > 0, "CAM needs at least one entry");
        // Widths beyond 64 are accepted for resource/frequency modelling
        // (the survey compares 144- and 160-bit configurations); functional
        // payloads are carried in u64 and clamp there.
        assert!((1..=512).contains(&width), "width {width} out of range");
        Geometry { entries, width }
    }

    pub(crate) fn value_limit(self) -> u64 {
        if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    pub(crate) fn check_value(self, value: u64) -> Result<(), CamError> {
        if value > self.value_limit() {
            Err(CamError::ValueTooWide {
                value,
                data_width: self.width,
            })
        } else {
            Ok(())
        }
    }

    pub(crate) fn bits(self) -> u64 {
        self.entries as u64 * u64::from(self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_validation() {
        let g = Geometry::new(16, 8);
        assert_eq!(g.value_limit(), 0xFF);
        assert_eq!(g.bits(), 128);
        assert!(g.check_value(0xFF).is_ok());
        assert!(g.check_value(0x100).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        let _ = Geometry::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_panics() {
        let _ = Geometry::new(1, 0);
    }

    #[test]
    fn width_64_limit() {
        assert_eq!(Geometry::new(1, 64).value_limit(), u64::MAX);
    }
}
