//! The classic register-and-comparator ("brute force") LUT CAM.
//!
//! Every entry is a fabric register bank with a dedicated equality
//! comparator; all comparators fire in parallel into a priority encoder.
//! Search is a single cycle and updates are trivial, but the LUT cost is
//! proportional to *stored bits* and the wide OR/priority trees wreck
//! timing as the CAM grows — the scalability wall the paper's Section II-A
//! describes for LUT-based designs.
//!
//! ## Model calibration
//!
//! A LUT6 compares ~4 bits (two 2-bit slices through the carry chain), so
//! `LUTs ≈ bits / 4 + encoder`; registers store every bit. Frequency
//! follows the comparator/encoder tree depth: ~450 MHz minus ~25 MHz per
//! doubling of entries (BPR-CAM's 1024×144 lands near its published
//! 111 MHz).

use dsp_cam_core::error::CamError;
use fpga_model::ResourceUsage;

use crate::cam::{Cam, Geometry};

/// A register-file CAM with parallel comparators.
#[derive(Debug, Clone)]
pub struct LutCam {
    geometry: Geometry,
    entries: Vec<Option<u64>>,
    fill: usize,
}

impl LutCam {
    /// Create a LUT CAM of `entries` × `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `width` is outside `1..=64`.
    #[must_use]
    pub fn new(entries: usize, width: u32) -> Self {
        let geometry = Geometry::new(entries, width);
        LutCam {
            geometry,
            entries: vec![None; entries],
            fill: 0,
        }
    }
}

impl Cam for LutCam {
    fn name(&self) -> &'static str {
        "LUT register CAM"
    }

    fn insert(&mut self, value: u64) -> Result<(), CamError> {
        self.geometry.check_value(value)?;
        if self.fill >= self.entries.len() {
            return Err(CamError::Full {
                rejected: 1,
                group: None,
            });
        }
        self.entries[self.fill] = Some(value);
        self.fill += 1;
        Ok(())
    }

    fn search(&mut self, key: u64) -> Option<usize> {
        // All comparators in parallel; priority encoder takes the lowest.
        self.entries
            .iter()
            .position(|&e| e == Some(key & self.geometry.value_limit()))
    }

    fn clear(&mut self) {
        self.entries.fill(None);
        self.fill = 0;
    }

    fn capacity(&self) -> usize {
        self.entries.len()
    }

    fn len(&self) -> usize {
        self.fill
    }

    fn update_latency(&self) -> u64 {
        1
    }

    fn search_latency(&self) -> u64 {
        // Comparators (1) + priority encoder tree, one register level per
        // 1024 entries beyond the first (BPR-CAM's published 2 cycles at
        // 1024 entries is the calibration point).
        1 + (self.geometry.entries as u64 / 1024)
    }

    fn resources(&self) -> ResourceUsage {
        let bits = self.geometry.bits();
        let encoder = self.geometry.entries as u64; // ~1 LUT per entry of tree
        ResourceUsage {
            lut: bits / 4 + encoder,
            ff: bits,
            bram36: 0,
            uram: 0,
            dsp: 0,
        }
    }

    fn frequency_mhz(&self) -> f64 {
        let doublings = (self.geometry.entries as f64).log2();
        (450.0 - 25.0 * doublings).max(60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let mut cam = LutCam::new(8, 16);
        cam.insert(100).unwrap();
        cam.insert(200).unwrap();
        assert_eq!(cam.search(200), Some(1));
        assert_eq!(cam.search(300), None);
        cam.clear();
        assert_eq!(cam.search(100), None);
        assert!(cam.is_empty());
    }

    #[test]
    fn full_and_wide_rejections() {
        let mut cam = LutCam::new(1, 8);
        cam.insert(1).unwrap();
        assert!(matches!(cam.insert(2), Err(CamError::Full { .. })));
        let mut cam = LutCam::new(2, 8);
        assert!(matches!(
            cam.insert(0x100),
            Err(CamError::ValueTooWide { .. })
        ));
    }

    #[test]
    fn resource_model_scales_with_bits() {
        let small = LutCam::new(64, 32).resources();
        let big = LutCam::new(1024, 32).resources();
        assert!(big.lut > 10 * small.lut);
        assert_eq!(big.dsp, 0);
        assert_eq!(big.bram36, 0);
    }

    #[test]
    fn frequency_degrades_with_entries() {
        let f64e = LutCam::new(64, 32).frequency_mhz();
        let f4k = LutCam::new(4096, 32).frequency_mhz();
        assert!(f64e > f4k);
        assert!(f4k >= 60.0);
        // Ballpark of BPR-CAM's published 111 MHz at 1024 entries.
        let f1k = LutCam::new(1024, 144).frequency_mhz();
        assert!((100.0..250.0).contains(&f1k), "{f1k}");
    }

    #[test]
    fn search_is_single_cycle_when_small() {
        assert_eq!(LutCam::new(128, 32).search_latency(), 1);
        assert!(LutCam::new(1024, 32).search_latency() > 1);
    }

    #[test]
    fn duplicate_returns_lowest() {
        let mut cam = LutCam::new(8, 8);
        cam.insert(7).unwrap();
        cam.insert(9).unwrap();
        cam.insert(7).unwrap();
        assert_eq!(cam.search(7), Some(0));
    }
}
