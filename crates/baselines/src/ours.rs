//! The paper's DSP-based CAM behind the common [`Cam`] trait.
//!
//! Wraps a [`CamUnit`] (single-group configuration, so fill-order
//! addresses are global) and reports the calibrated resource/frequency
//! models from `fpga-model`, making the design directly comparable to the
//! baselines in every sweep.

use dsp_cam_core::error::CamError;
use dsp_cam_core::prelude::*;
use fpga_model::{CamResourceModel, FrequencyModel, ResourceUsage};

use crate::cam::Cam;

/// Adapter: the paper's CAM unit as a [`Cam`].
#[derive(Debug, Clone)]
pub struct DspCamAdapter {
    unit: CamUnit,
    requested_entries: usize,
    resources: CamResourceModel,
    frequency: FrequencyModel,
}

impl DspCamAdapter {
    /// Build a unit covering `entries` × `width` bits, using the paper's
    /// case-study block size (128) rounded to fit.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `width` is outside `1..=48`.
    #[must_use]
    pub fn new(entries: usize, width: u32) -> Self {
        assert!(entries > 0, "CAM needs at least one entry");
        let block_size = entries.next_power_of_two().clamp(2, 128);
        let num_blocks = entries.div_ceil(block_size);
        let config = UnitConfig::builder()
            .data_width(width)
            .block_size(block_size)
            .num_blocks(num_blocks)
            .bus_width(512.max(width.next_power_of_two()))
            .build()
            .expect("adapter geometry is valid");
        DspCamAdapter {
            unit: CamUnit::new(config).expect("validated config"),
            requested_entries: entries,
            resources: CamResourceModel::u250(),
            frequency: FrequencyModel::u250_unit(),
        }
    }

    /// Borrow the wrapped unit.
    #[must_use]
    pub fn unit(&self) -> &CamUnit {
        &self.unit
    }
}

impl Cam for DspCamAdapter {
    fn name(&self) -> &'static str {
        "DSP CAM (ours)"
    }

    fn insert(&mut self, value: u64) -> Result<(), CamError> {
        if self.unit.len() >= self.requested_entries {
            return Err(CamError::Full {
                rejected: 1,
                group: None,
            });
        }
        self.unit.update(&[value])
    }

    fn search(&mut self, key: u64) -> Option<usize> {
        self.unit.search(key).first_address()
    }

    fn clear(&mut self) {
        self.unit.reset();
    }

    fn capacity(&self) -> usize {
        self.requested_entries
    }

    fn len(&self) -> usize {
        self.unit.len()
    }

    fn update_latency(&self) -> u64 {
        self.unit.config().update_latency()
    }

    fn search_latency(&self) -> u64 {
        self.unit.config().search_latency()
    }

    fn resources(&self) -> ResourceUsage {
        self.resources
            .unit_resources(self.unit.config().total_cells() as u64, false)
    }

    fn frequency_mhz(&self) -> f64 {
        self.frequency
            .frequency_mhz(self.unit.config().total_cells() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_semantics_match_trait_contract() {
        let mut cam = DspCamAdapter::new(100, 32);
        cam.insert(11).unwrap();
        cam.insert(22).unwrap();
        assert_eq!(cam.search(22), Some(1));
        assert_eq!(cam.search(33), None);
        assert_eq!(cam.capacity(), 100);
        cam.clear();
        assert!(cam.is_empty());
    }

    #[test]
    fn requested_capacity_enforced_below_unit_capacity() {
        // 100 entries round up to 128 cells; the adapter still refuses the
        // 101st insert to honour the requested geometry.
        let mut cam = DspCamAdapter::new(100, 32);
        for v in 0..100u64 {
            cam.insert(v).unwrap();
        }
        assert!(matches!(cam.insert(200), Err(CamError::Full { .. })));
    }

    #[test]
    fn latency_constants_beat_the_cascade() {
        let ours = DspCamAdapter::new(1024, 24);
        let theirs = crate::dsp_queue::DspCascadeCam::new(1024, 24);
        assert!(ours.search_latency() < theirs.search_latency());
        assert_eq!(ours.update_latency(), 6);
        assert!(ours.search_latency() <= 8);
    }

    #[test]
    fn resource_model_is_dsp_dominated() {
        let cam = DspCamAdapter::new(2048, 48);
        let r = cam.resources();
        assert_eq!(r.dsp, 2048);
        assert!(r.lut < 12_000);
        assert!(cam.frequency_mhz() >= 235.0);
    }

    #[test]
    fn small_geometry_rounds_up_block() {
        let cam = DspCamAdapter::new(5, 16);
        assert_eq!(cam.capacity(), 5);
        assert_eq!(cam.unit().config().block.block_size, 8);
    }
}
