//! Survey fidelity: each baseline model evaluated at its published
//! Table I geometry, against the published numbers.
//!
//! The functional baselines carry analytic resource/latency/frequency
//! models; this module quantifies how close those models come to the
//! survey rows they were calibrated against, so the `table1_survey` bench
//! can report model error rather than hide it.

use dsp_cam_core::error::CamError;
use fpga_model::survey::{published_survey, SurveyEntry};
use serde::Serialize;

use crate::bram_cam::BramCam;
use crate::cam::Cam;
use crate::dsp_queue::DspCascadeCam;
use crate::hybrid_cam::HybridCam;
use crate::lut_cam::LutCam;
use crate::lutram_cam::LutramCam;

/// One fidelity comparison: a metric of one design at its survey geometry.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FidelityRow {
    /// The survey design this model family reproduces.
    pub design: &'static str,
    /// Metric name.
    pub metric: &'static str,
    /// The survey's published value.
    pub published: f64,
    /// Our model's value at the same geometry.
    pub modelled: f64,
}

impl FidelityRow {
    /// `modelled / published` (∞-safe).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.published == 0.0 {
            if self.modelled == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.modelled / self.published
        }
    }

    /// Whether the model lands within `factor`× of the published value.
    #[must_use]
    pub fn within(&self, factor: f64) -> bool {
        let r = self.ratio();
        r >= 1.0 / factor && r <= factor
    }
}

fn model_for(entry: &SurveyEntry) -> Option<Box<dyn Cam>> {
    let e = entry.entries as usize;
    let w = entry.width;
    Some(match entry.name {
        // Register-file family (the LUT-hungry classic).
        "BPR-CAM" => Box::new(LutCam::new(e, w)),
        // Transposed LUTRAM family.
        "DURE" | "Frac-TCAM" => Box::new(LutramCam::new(e, w)),
        // Transposed BRAM family.
        "HP-TCAM" | "PUMP-CAM" => Box::new(BramCam::new(e, w)),
        // Hybrid SRAM+LUT.
        "REST-CAM" => Box::new(HybridCam::new(e, w)),
        // DSP cascade.
        "Preusser et al." => Box::new(DspCascadeCam::new(e, w)),
        // Scale-TCAM / IO-CAM use partitioning tricks none of the generic
        // families model; no claim is made for them.
        _ => return None,
    })
}

/// Compare every modelled survey design against its published row.
#[must_use]
pub fn survey_fidelity() -> Vec<FidelityRow> {
    let mut rows = Vec::new();
    for entry in published_survey() {
        let Some(cam) = model_for(&entry) else {
            continue;
        };
        let mut push = |metric: &'static str, published: f64, modelled: f64| {
            rows.push(FidelityRow {
                design: entry.name,
                metric,
                published,
                modelled,
            });
        };
        push("frequency_mhz", entry.frequency_mhz, cam.frequency_mhz());
        let r = cam.resources();
        // LUT counts are compared only where the family model covers the
        // design's area trick: DURE predates Frac-TCAM's fracturable
        // packing (publishes ~2.2x the family model), and BPR-CAM's block
        // partial reconfiguration undercuts the plain register file by
        // ~2.5x. Their latency/frequency columns are still claimed.
        let lut_out_of_scope = matches!(entry.name, "DURE" | "BPR-CAM");
        if entry.lut > 0 && !lut_out_of_scope {
            push("lut", entry.lut as f64, r.lut as f64);
        }
        // PUMP-CAM's multipumping shares each BRAM across four chunk
        // reads per cycle, cutting its array to a third of the structural
        // transposed layout; the family model charges the multipump in
        // update latency (129 cycles, exact) but not in BRAM count.
        let bram_out_of_scope = entry.name == "PUMP-CAM";
        if entry.bram > 0 && !bram_out_of_scope {
            push("bram", entry.bram as f64, r.bram36 as f64);
        }
        if entry.dsp > 0 {
            push("dsp", entry.dsp as f64, r.dsp as f64);
        }
        if let Some(u) = entry.update_latency {
            push("update_latency", u as f64, cam.update_latency() as f64);
        }
        if let Some(s) = entry.search_latency {
            push("search_latency", s as f64, cam.search_latency() as f64);
        }
    }
    rows
}

/// Functional smoke test of a modelled design at its survey geometry:
/// insert/search/clear still behave after scaling to the published size.
///
/// # Errors
///
/// Propagates any [`CamError`] the design raises (none is expected).
pub fn exercise_at_survey_geometry(entry: &SurveyEntry) -> Result<bool, CamError> {
    let Some(mut cam) = model_for(entry) else {
        return Ok(false);
    };
    cam.insert(1)?;
    cam.insert(2)?;
    assert_eq!(cam.search(2), Some(1), "{}", entry.name);
    assert_eq!(cam.search(3), None, "{}", entry.name);
    cam.clear();
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_modelled_design_is_within_2x_of_its_survey_row() {
        let rows = survey_fidelity();
        assert!(rows.len() >= 15, "expected a broad comparison set");
        for row in &rows {
            // Frequencies compare across silicon generations (the survey
            // spans Virtex-6 through UltraScale+), so they get a wider
            // band than same-node resource/latency counts.
            let factor = if row.metric == "frequency_mhz" {
                2.5
            } else {
                2.0
            };
            assert!(
                row.within(factor),
                "{} {}: published {} vs modelled {} (ratio {:.2})",
                row.design,
                row.metric,
                row.published,
                row.modelled,
                row.ratio()
            );
        }
    }

    #[test]
    fn exact_calibration_points_hold() {
        let rows = survey_fidelity();
        let find = |design: &str, metric: &str| {
            rows.iter()
                .find(|r| r.design == design && r.metric == metric)
                .unwrap_or_else(|| panic!("{design}/{metric} missing"))
        };
        // The points the models were calibrated to match exactly.
        assert_eq!(find("Preusser et al.", "dsp").ratio(), 1.0);
        assert_eq!(find("Preusser et al.", "lut").ratio(), 1.0);
        assert_eq!(find("Preusser et al.", "frequency_mhz").ratio(), 1.0);
        assert_eq!(find("Preusser et al.", "search_latency").ratio(), 1.0);
        assert_eq!(find("DURE", "update_latency").ratio(), 1.0);
        assert_eq!(find("PUMP-CAM", "update_latency").ratio(), 1.0);
        assert_eq!(find("HP-TCAM", "search_latency").ratio(), 1.0);
        assert_eq!(find("REST-CAM", "update_latency").ratio(), 1.0);
        assert_eq!(find("REST-CAM", "bram").ratio(), 1.0);
    }

    #[test]
    fn functional_exercise_at_survey_geometries() {
        let mut exercised = 0;
        for entry in published_survey() {
            if exercise_at_survey_geometry(&entry).expect("no CAM errors") {
                exercised += 1;
            }
        }
        assert_eq!(exercised, 7, "seven of nine survey rows are modelled");
    }

    #[test]
    fn ratio_edge_cases() {
        let zero = FidelityRow {
            design: "x",
            metric: "y",
            published: 0.0,
            modelled: 0.0,
        };
        assert_eq!(zero.ratio(), 1.0);
        let inf = FidelityRow {
            published: 0.0,
            modelled: 1.0,
            ..zero.clone()
        };
        assert!(inf.ratio().is_infinite());
        assert!(!inf.within(10.0));
    }
}
